// Hostile-input contract of kf::store: every corruption — flipped magic,
// wrong version, truncation at any byte, bit flips under the checksums,
// out-of-range dictionary ids, bogus enum values — loads to a clean
// Status, never a crash or out-of-bounds read. The suite runs under ASan
// in CI, so "never reads past the buffer" is machine-checked, not
// asserted by eyeball.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "extract/tsv_io.h"
#include "store/format.h"
#include "store/store.h"

namespace kf::store {
namespace {

constexpr const char* kTsv =
    "TomCruise\tbirth_date\t1962-07-03\tdom\thttps://en.wikipedia.org/tc\t"
    "0.95\n"
    "TomCruise\tbirth_date\t1963-07-03\ttxt\thttps://fan.example.com/tc\t"
    "0.40\n"
    "TopGun\trelease_year\t1986\ttbl\thttps://en.wikipedia.org/tg\n";

std::string ValidCorpusImage() {
  auto corpus = extract::ReadExtractionsTsv(kTsv);
  EXPECT_TRUE(corpus.ok());
  return WriteCorpus(*corpus);
}

/// Mutates the payload of block `id` in a serialized image via `mutate`,
/// then re-stamps the payload CRC and the TOC CRC so the corruption is
/// "consistent" — it must be caught by semantic validation, not by the
/// checksums.
std::string PatchBlock(std::string bytes, BlockId id,
                       void (*mutate)(char* payload, size_t size)) {
  FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  BlockEntry* toc = reinterpret_cast<BlockEntry*>(&bytes[header.toc_offset]);
  for (uint32_t i = 0; i < header.toc_count; ++i) {
    if (toc[i].id == static_cast<uint32_t>(id)) {
      mutate(&bytes[toc[i].offset], toc[i].size);
      toc[i].crc32 = Crc32(&bytes[toc[i].offset], toc[i].size);
      break;
    }
  }
  header.toc_crc32 = Crc32(&bytes[header.toc_offset],
                           header.toc_count * sizeof(BlockEntry));
  std::memcpy(bytes.data(), &header, sizeof(header));
  return bytes;
}

/// Rewrites the TOC `rows` of block `id` (payload untouched) and
/// re-stamps the TOC CRC, so only row-count validation can object.
std::string PatchTocRows(std::string bytes, BlockId id, uint64_t rows) {
  FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  BlockEntry* toc = reinterpret_cast<BlockEntry*>(&bytes[header.toc_offset]);
  for (uint32_t i = 0; i < header.toc_count; ++i) {
    if (toc[i].id == static_cast<uint32_t>(id)) toc[i].rows = rows;
  }
  header.toc_crc32 = Crc32(&bytes[header.toc_offset],
                           header.toc_count * sizeof(BlockEntry));
  std::memcpy(bytes.data(), &header, sizeof(header));
  return bytes;
}

void ExpectCleanFailure(const std::string& bytes) {
  auto result = LoadCorpus(bytes);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.status().message().empty());
}

TEST(StoreCorruptionTest, FlippedMagicIsRejected) {
  std::string bytes = ValidCorpusImage();
  bytes[0] ^= 0x40;
  auto result = LoadCorpus(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("magic"), std::string::npos);
}

TEST(StoreCorruptionTest, UnsupportedVersionIsRejected) {
  std::string bytes = ValidCorpusImage();
  const uint32_t version = 99;
  std::memcpy(&bytes[8], &version, sizeof(version));  // FileHeader.version
  auto result = LoadCorpus(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("version 99"), std::string::npos);
}

TEST(StoreCorruptionTest, TruncationAtEveryPrefixFailsCleanly) {
  const std::string bytes = ValidCorpusImage();
  // Every 7-byte step plus the structurally interesting boundaries.
  for (size_t len = 0; len < bytes.size(); len += 7) {
    ExpectCleanFailure(bytes.substr(0, len));
  }
  ExpectCleanFailure(bytes.substr(0, sizeof(FileHeader) - 1));
  ExpectCleanFailure(bytes.substr(0, sizeof(FileHeader)));
  ExpectCleanFailure(bytes.substr(0, bytes.size() - 1));
  // And bytes appended past the recorded file size are equally rejected.
  ExpectCleanFailure(bytes + "trailing garbage");
}

TEST(StoreCorruptionTest, PayloadBitFlipFailsTheChecksum) {
  // Flip one bit inside an actual block payload (not the inter-block
  // padding, which carries no data) — the block CRC must catch it.
  std::string bytes = ValidCorpusImage();
  FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  const BlockEntry* toc =
      reinterpret_cast<const BlockEntry*>(&bytes[header.toc_offset]);
  for (uint32_t i = 0; i < header.toc_count; ++i) {
    if (toc[i].size > 0) {
      bytes[toc[i].offset] ^= 0x01;
      break;
    }
  }
  auto result = LoadCorpus(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_NE(result.status().message().find("checksum"), std::string::npos);
}

TEST(StoreCorruptionTest, TocBitFlipFailsTheChecksum) {
  std::string bytes = ValidCorpusImage();
  FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  bytes[header.toc_offset + 4] ^= 0x01;
  auto result = LoadCorpus(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_NE(result.status().message().find("block table"), std::string::npos);
}

TEST(StoreCorruptionTest, DictionaryIdOutOfRangeIsRejected) {
  // A record's URL id pointing past the URL dictionary, with all
  // checksums re-stamped: caught by the cross-reference validation.
  // (0xff every packed element — id 255+ in a 3-record corpus is always
  // out of range, whatever byte width the writer chose.)
  std::string bytes = PatchBlock(
      ValidCorpusImage(), BlockId::kRecordUrl,
      [](char* payload, size_t size) { std::memset(payload, 0xff, size); });
  auto result = LoadCorpus(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("out of range"),
            std::string::npos);
}

TEST(StoreCorruptionTest, TripleObjectOutOfRangeIsRejected) {
  std::string bytes = PatchBlock(
      ValidCorpusImage(), BlockId::kTripleObject,
      [](char* payload, size_t size) { std::memset(payload, 0xff, size); });
  auto result = LoadCorpus(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StoreCorruptionTest, PackedWidthMismatchIsRejected) {
  // Shrink a packed block's row count so size no longer divides into
  // rows (re-stamping the TOC CRC): structural validation, not a crash.
  std::string bytes = ValidCorpusImage();
  FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  BlockEntry* toc = reinterpret_cast<BlockEntry*>(&bytes[header.toc_offset]);
  for (uint32_t i = 0; i < header.toc_count; ++i) {
    if (toc[i].id == static_cast<uint32_t>(BlockId::kRecordUrl)) {
      ASSERT_GT(toc[i].rows, 1u);
      toc[i].rows -= 1;  // 3 records -> 2 rows over a 3-element payload
    }
  }
  header.toc_crc32 = Crc32(&bytes[header.toc_offset],
                           header.toc_count * sizeof(BlockEntry));
  std::memcpy(bytes.data(), &header, sizeof(header));
  auto result = LoadCorpus(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StoreCorruptionTest, FixedPointConfidenceAboveScaleIsRejected) {
  // The sample confidences fit the fixed-point encoding; 0xff-filling the
  // column produces values far above the 10000 scale.
  std::string bytes = PatchBlock(
      ValidCorpusImage(), BlockId::kRecordConfidence,
      [](char* payload, size_t size) { std::memset(payload, 0xff, size); });
  auto result = LoadCorpus(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("above scale"), std::string::npos);
}

TEST(StoreCorruptionTest, UnknownValueKindIsRejected) {
  std::string bytes = PatchBlock(ValidCorpusImage(), BlockId::kValueKind,
                                 [](char* payload, size_t) {
                                   payload[0] = 9;  // no such ValueKind
                                 });
  auto result = LoadCorpus(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("value kind"), std::string::npos);
}

TEST(StoreCorruptionTest, UnknownRecordErrorClassIsRejected) {
  std::string bytes = PatchBlock(ValidCorpusImage(), BlockId::kRecordFlags,
                                 [](char* payload, size_t) {
                                   payload[0] = static_cast<char>(0xfe);
                                 });
  auto result = LoadCorpus(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("error class"),
            std::string::npos);
}

TEST(StoreCorruptionTest, StringOffsetsOutOfRangeAreRejected) {
  // First URL dictionary offset bumped past the bytes area: the offset
  // table validation must reject it before any substr.
  std::string bytes = PatchBlock(
      ValidCorpusImage(), BlockId::kDictUrls,
      [](char* payload, size_t size) {
        const uint32_t huge = static_cast<uint32_t>(size + 1000);
        std::memcpy(payload + sizeof(uint32_t), &huge, sizeof(huge));
      });
  auto result = LoadCorpus(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StoreCorruptionTest, MissingBlockIsRejected) {
  // Retag the record-triple column as an unknown block id: readers skip
  // unknown blocks (forward compat), so the required one is now missing.
  std::string bytes = ValidCorpusImage();
  FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  BlockEntry* toc = reinterpret_cast<BlockEntry*>(&bytes[header.toc_offset]);
  for (uint32_t i = 0; i < header.toc_count; ++i) {
    if (toc[i].id == static_cast<uint32_t>(BlockId::kRecordTriple)) {
      toc[i].id = 9999;
    }
  }
  header.toc_crc32 = Crc32(&bytes[header.toc_offset],
                           header.toc_count * sizeof(BlockEntry));
  std::memcpy(bytes.data(), &header, sizeof(header));
  auto result = LoadCorpus(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("missing block"),
            std::string::npos);
}

TEST(StoreCorruptionTest, DictRowCountOverflowIsRejected) {
  // Huge dictionary row counts make the u32 offset-table sizing wrap
  // (2^62 - 1 wraps (rows + 1) * 4 to 0; UINT64_MAX wraps rows + 1) —
  // each once produced a ~2^62-entry "offset table" scanned far past the
  // mapping. Both must be rejected by the sizing check instead.
  for (const uint64_t rows : {(1ull << 62) - 1, ~0ull}) {
    std::string bytes =
        PatchTocRows(ValidCorpusImage(), BlockId::kDictUrls, rows);
    auto result = LoadCorpus(bytes);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(result.status().message().find("offset table"),
              std::string::npos);
  }
}

TEST(StoreCorruptionTest, SupportOffsetRowInflationIsRejected) {
  extract::FusedKbTsv kb;
  kb.method = "vote";
  kb.provenances.resize(1);
  kb.provenances[0] = {"a", 0.5, false, 1};
  kb.triples.resize(1);
  kb.triples[0] = {"s", "p", "o", 0.5, 0.5, true, false, true, {0}};
  // An inflated delta-varint row count is caught by the rows-vs-payload
  // bound, not by attempting a 2^62-entry allocation.
  std::string bytes = PatchTocRows(WriteFusedKb(kb),
                                   BlockId::kKbSupportOffsets, 1ull << 62);
  auto result = LoadFusedKb(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StoreCorruptionTest, FusedKbSupporterOutOfRangeIsRejected) {
  extract::FusedKbTsv kb;
  kb.method = "vote";
  kb.provenances.resize(2);
  kb.provenances[0] = {"a", 0.5, false, 1};
  kb.provenances[1] = {"b", 0.5, false, 1};
  kb.triples.resize(1);
  kb.triples[0] = {"s", "p", "o", 0.5, 0.5, true, false, true, {1}};
  std::string bytes = WriteFusedKb(kb);

  // Patch the single supporter varint (value 1, one byte) to 99 — still
  // one varint byte, but past the two provenances.
  FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  BlockEntry* toc = reinterpret_cast<BlockEntry*>(&bytes[header.toc_offset]);
  for (uint32_t i = 0; i < header.toc_count; ++i) {
    if (toc[i].id == static_cast<uint32_t>(BlockId::kKbSupporters)) {
      ASSERT_EQ(toc[i].size, 1u);
      bytes[toc[i].offset] = 99;
      toc[i].crc32 = Crc32(&bytes[toc[i].offset], toc[i].size);
    }
  }
  header.toc_crc32 = Crc32(&bytes[header.toc_offset],
                           header.toc_count * sizeof(BlockEntry));
  std::memcpy(bytes.data(), &header, sizeof(header));

  auto result = LoadFusedKb(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("out of range"),
            std::string::npos);
}

TEST(StoreCorruptionTest, MmapOpenOnCorruptFileFailsCleanly) {
  const std::string path = testing::TempDir() + "store_corrupt.kfs";
  std::string bytes = ValidCorpusImage();
  bytes[0] ^= 0x40;
  ASSERT_TRUE(extract::WriteFile(path, bytes).ok());
  auto mapped = CorpusMmapView::Open(path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_NE(mapped.status().message().find(path), std::string::npos);
  std::remove(path.c_str());

  // And an empty file (mmap's zero-length special case).
  ASSERT_TRUE(extract::WriteFile(path, "").ok());
  auto empty = CorpusMmapView::Open(path);
  EXPECT_FALSE(empty.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kf::store
