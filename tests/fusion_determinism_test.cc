// The engine's determinism contract: for a fixed input, options, and shard
// count, the FusionResult is bit-identical regardless of the worker count.
// Stage I writes disjoint per-triple slots, Stage II reduces each
// provenance in fixed cross-index order, and no decomposition depends on
// the worker count.
#include <gtest/gtest.h>

#include "eval/gold_standard.h"
#include "fusion/engine.h"
#include "synth/corpus.h"

namespace kf::fusion {
namespace {

struct Workload {
  synth::SynthCorpus corpus;
  std::vector<Label> labels;
};

const Workload& GetWorkload() {
  static Workload* w = [] {
    auto* x = new Workload{
        synth::GenerateCorpus(synth::SynthConfig::Small()), {}};
    x->labels = eval::BuildGoldStandard(x->corpus.dataset, x->corpus.freebase);
    return x;
  }();
  return *w;
}

struct Capture {
  FusionResult result;
  std::vector<double> accuracies;
  std::vector<uint32_t> prov_claims;
};

Capture RunWith(FusionOptions opts, size_t workers,
                const std::vector<Label>* gold = nullptr) {
  opts.num_workers = workers;
  FusionEngine engine(GetWorkload().corpus.dataset, opts);
  Capture c;
  c.result = engine.Run(gold);
  c.accuracies = engine.provenance_accuracy();
  c.prov_claims = engine.provenance_claims();
  return c;
}

void ExpectBitIdentical(const Capture& a, const Capture& b) {
  ASSERT_EQ(a.result.probability.size(), b.result.probability.size());
  // Element-wise == on doubles: any reordering of a floating-point
  // reduction would show up here.
  EXPECT_EQ(a.result.probability, b.result.probability);
  EXPECT_EQ(a.result.has_probability, b.result.has_probability);
  EXPECT_EQ(a.result.from_fallback, b.result.from_fallback);
  EXPECT_EQ(a.result.num_rounds, b.result.num_rounds);
  EXPECT_EQ(a.result.num_provenances, b.result.num_provenances);
  EXPECT_EQ(a.result.num_unevaluated_provenances,
            b.result.num_unevaluated_provenances);
  EXPECT_EQ(a.result.Coverage(), b.result.Coverage());
  EXPECT_EQ(a.accuracies, b.accuracies);
  EXPECT_EQ(a.prov_claims, b.prov_claims);
}

class MethodSweep : public ::testing::TestWithParam<Method> {};

TEST_P(MethodSweep, IdenticalAcrossWorkerCounts) {
  FusionOptions opts;
  opts.method = GetParam();
  opts.num_shards = 8;  // fixed: the contract is per shard count
  ExpectBitIdentical(RunWith(opts, 1), RunWith(opts, 4));
}

TEST_P(MethodSweep, StableAcrossRepeatedRuns) {
  FusionOptions opts;
  opts.method = GetParam();
  opts.num_shards = 8;
  ExpectBitIdentical(RunWith(opts, 4), RunWith(opts, 4));
}

INSTANTIATE_TEST_SUITE_P(Methods, MethodSweep,
                         ::testing::Values(Method::kVote, Method::kAccu,
                                           Method::kPopAccu));

TEST(DeterminismTest, FilteredStackIdenticalAcrossWorkerCounts) {
  // The full unsupervised refinement stack exercises the coverage filter,
  // the accuracy filter with fallback, and multi-round re-evaluation.
  FusionOptions opts = FusionOptions::PopAccuPlusUnsup();
  opts.num_shards = 8;
  ExpectBitIdentical(RunWith(opts, 1), RunWith(opts, 4));
}

TEST(DeterminismTest, GoldInitializedIdenticalAcrossWorkerCounts) {
  FusionOptions opts = FusionOptions::PopAccuPlus();
  opts.num_shards = 8;
  opts.gold_sample_rate = 0.5;  // also exercises the hash-sampled gold path
  const std::vector<Label>* gold = &GetWorkload().labels;
  ExpectBitIdentical(RunWith(opts, 1, gold), RunWith(opts, 4, gold));
}

TEST(DeterminismTest, SampleCapReservoirIdenticalAcrossWorkerCounts) {
  // Force the reservoir path: per-group sampling is seeded by (seed, item)
  // and (seed, prov), never by thread identity.
  FusionOptions opts = FusionOptions::PopAccu();
  opts.num_shards = 8;
  opts.sample_cap = 3;
  ExpectBitIdentical(RunWith(opts, 1), RunWith(opts, 4));
}

}  // namespace
}  // namespace kf::fusion
