// The engine's determinism contract: for a fixed input, options, and shard
// count, the FusionResult is bit-identical regardless of the worker count.
// Stage I writes disjoint per-triple slots, Stage II reduces each
// provenance in fixed cross-index order, and no decomposition — including
// the largest-first sweep schedule — depends on the worker count.
#include <gtest/gtest.h>

#include <cstdlib>

#include "eval/gold_standard.h"
#include "fusion/engine.h"
#include "synth/corpus.h"

namespace kf::fusion {
namespace {

// Worker counts exercised against the 1-worker reference: around and well
// past the global pool size, so chunk stealing and caller participation
// both happen. KF_TEST_WORKERS (CI sets 8 for the sanitizer jobs) adds one
// more count to the sweep.
std::vector<size_t> WorkerCounts() {
  std::vector<size_t> counts = {8, 24};
  if (const char* env = std::getenv("KF_TEST_WORKERS")) {
    const long w = std::atol(env);
    if (w > 1) counts.push_back(static_cast<size_t>(w));
  }
  return counts;
}

struct Workload {
  synth::SynthCorpus corpus;
  std::vector<Label> labels;
};

const Workload& GetWorkload() {
  static Workload* w = [] {
    auto* x = new Workload{
        synth::GenerateCorpus(synth::SynthConfig::Small()), {}};
    x->labels = eval::BuildGoldStandard(x->corpus.dataset, x->corpus.freebase);
    return x;
  }();
  return *w;
}

struct Capture {
  FusionResult result;
  std::vector<double> accuracies;
  std::vector<uint32_t> prov_claims;
};

Capture RunOn(const extract::ExtractionDataset& dataset, FusionOptions opts,
              size_t workers, const std::vector<Label>* gold = nullptr) {
  opts.num_workers = workers;
  FusionEngine engine(dataset, opts);
  Capture c;
  c.result = engine.Run(gold);
  c.accuracies = engine.provenance_accuracy();
  c.prov_claims = engine.provenance_claims();
  return c;
}

Capture RunWith(const FusionOptions& opts, size_t workers,
                const std::vector<Label>* gold = nullptr) {
  return RunOn(GetWorkload().corpus.dataset, opts, workers, gold);
}

void ExpectBitIdentical(const Capture& a, const Capture& b) {
  ASSERT_EQ(a.result.probability.size(), b.result.probability.size());
  // Element-wise == on doubles: any reordering of a floating-point
  // reduction would show up here.
  EXPECT_EQ(a.result.probability, b.result.probability);
  EXPECT_EQ(a.result.has_probability, b.result.has_probability);
  EXPECT_EQ(a.result.from_fallback, b.result.from_fallback);
  EXPECT_EQ(a.result.num_rounds, b.result.num_rounds);
  EXPECT_EQ(a.result.num_provenances, b.result.num_provenances);
  EXPECT_EQ(a.result.num_unevaluated_provenances,
            b.result.num_unevaluated_provenances);
  EXPECT_EQ(a.result.Coverage(), b.result.Coverage());
  EXPECT_EQ(a.accuracies, b.accuracies);
  EXPECT_EQ(a.prov_claims, b.prov_claims);
}

class MethodSweep : public ::testing::TestWithParam<Method> {};

TEST_P(MethodSweep, IdenticalAcrossWorkerCounts) {
  FusionOptions opts;
  opts.method = GetParam();
  opts.num_shards = 8;  // fixed: the contract is per shard count
  const Capture reference = RunWith(opts, 1);
  for (size_t workers : WorkerCounts()) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ExpectBitIdentical(reference, RunWith(opts, workers));
  }
}

TEST_P(MethodSweep, StableAcrossRepeatedRuns) {
  FusionOptions opts;
  opts.method = GetParam();
  opts.num_shards = 8;
  ExpectBitIdentical(RunWith(opts, 4), RunWith(opts, 4));
}

INSTANTIATE_TEST_SUITE_P(Methods, MethodSweep,
                         ::testing::Values(Method::kVote, Method::kAccu,
                                           Method::kPopAccu));

TEST(DeterminismTest, FilteredStackIdenticalAcrossWorkerCounts) {
  // The full unsupervised refinement stack exercises the coverage filter,
  // the accuracy filter with fallback, and multi-round re-evaluation —
  // i.e. the buffer-assembly sweep path, not the zero-copy one.
  FusionOptions opts = FusionOptions::PopAccuPlusUnsup();
  opts.num_shards = 8;
  const Capture reference = RunWith(opts, 1);
  for (size_t workers : WorkerCounts()) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ExpectBitIdentical(reference, RunWith(opts, workers));
  }
}

TEST(DeterminismTest, GoldInitializedIdenticalAcrossWorkerCounts) {
  FusionOptions opts = FusionOptions::PopAccuPlus();
  opts.num_shards = 8;
  opts.gold_sample_rate = 0.5;  // also exercises the hash-sampled gold path
  const std::vector<Label>* gold = &GetWorkload().labels;
  ExpectBitIdentical(RunWith(opts, 1, gold), RunWith(opts, 4, gold));
}

TEST(DeterminismTest, SampleCapReservoirIdenticalAcrossWorkerCounts) {
  // Force the reservoir path: per-group sampling is seeded by (seed, item)
  // and (seed, prov), never by thread identity.
  FusionOptions opts = FusionOptions::PopAccu();
  opts.num_shards = 8;
  opts.sample_cap = 3;
  ExpectBitIdentical(RunWith(opts, 1), RunWith(opts, 4));
}

// ---- Skewed corpus: one mega-item dwarfing everything else ----
//
// Shards are hash partitions of the items, so the mega-item's shard
// carries ~10x the claims of any other. This is exactly the shape the
// largest-first sweep schedule targets; the contract is that scheduling
// only moves wall-clock, never bits.
extract::ExtractionDataset SkewedDataset() {
  extract::ExtractionDataset d;
  d.SetExtractors({extract::ExtractorMeta{"E0", extract::ContentType::kTxt,
                                          true, 0, 0},
                   extract::ExtractorMeta{"E1", extract::ContentType::kDom,
                                          true, 1, 0}});
  constexpr uint32_t kUrls = 240;
  std::vector<extract::SiteId> url_site(kUrls);
  for (uint32_t u = 0; u < kUrls; ++u) url_site[u] = u % 3;
  d.SetUrlSites(std::move(url_site));
  d.SetCounts(/*num_sites=*/3, /*num_patterns=*/2, /*num_predicates=*/2);
  auto add = [&](kb::EntityId s, kb::PredicateId p, kb::ValueId o,
                 uint32_t ext, uint32_t url) {
    kb::TripleId t = d.InternTriple(kb::DataItem{s, p}, o, false, false);
    extract::ExtractionRecord r;
    r.triple = t;
    r.prov.extractor = ext;
    r.prov.url = url;
    r.prov.site = d.site_of_url(url);
    r.prov.pattern = ext;
    r.prov.predicate = p;
    d.AddRecord(r);
  };
  // The mega item: every url claims it — value 10 from ~2/3 of the
  // provenances, conflicting values 11/12 from the rest.
  for (uint32_t u = 0; u < kUrls; ++u) {
    const kb::ValueId v = (u % 3 == 0) ? 11 + (u % 2) : 10;
    add(/*s=*/1, /*p=*/0, v, /*ext=*/u % 2, /*url=*/u);
  }
  // A long tail of small items: 1-2 claims each.
  for (kb::EntityId e = 2; e < 62; ++e) {
    add(e, /*p=*/1, /*o=*/100 + e, /*ext=*/0, /*url=*/e % kUrls);
    if (e % 2 == 0) {
      add(e, /*p=*/1, /*o=*/100 + e, /*ext=*/1, /*url=*/(e + 7) % kUrls);
    }
  }
  return d;
}

class SkewedMethodSweep : public ::testing::TestWithParam<Method> {};

TEST_P(SkewedMethodSweep, IdenticalAcrossWorkerCounts) {
  static const extract::ExtractionDataset& dataset =
      *new extract::ExtractionDataset(SkewedDataset());
  FusionOptions opts;
  opts.method = GetParam();
  opts.num_shards = 4;  // few shards: the mega-item shard dominates
  const Capture reference = RunOn(dataset, opts, 1);
  for (size_t workers : WorkerCounts()) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ExpectBitIdentical(reference, RunOn(dataset, opts, workers));
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, SkewedMethodSweep,
                         ::testing::Values(Method::kVote, Method::kAccu,
                                           Method::kPopAccu));

TEST(DeterminismTest, SkewedFilteredStackIdenticalAcrossWorkerCounts) {
  // Coverage filter + theta + fallback on the skewed corpus: the filtered
  // (buffer) sweep path under the skew-aware schedule.
  static const extract::ExtractionDataset& dataset =
      *new extract::ExtractionDataset(SkewedDataset());
  FusionOptions opts = FusionOptions::PopAccuPlusUnsup();
  opts.num_shards = 4;
  const Capture reference = RunOn(dataset, opts, 1);
  for (size_t workers : WorkerCounts()) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ExpectBitIdentical(reference, RunOn(dataset, opts, workers));
  }
}

TEST(DeterminismTest, SkewedThetaOnlyIdenticalAcrossWorkerCounts) {
  // Theta without the coverage filter: the theta_pass_ byte filter and the
  // per-triple fallback scatter, while the schedule stays skew-aware.
  static const extract::ExtractionDataset& dataset =
      *new extract::ExtractionDataset(SkewedDataset());
  FusionOptions opts = FusionOptions::PopAccu();
  opts.min_provenance_accuracy = 0.6;
  opts.num_shards = 4;
  const Capture reference = RunOn(dataset, opts, 1);
  for (size_t workers : WorkerCounts()) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ExpectBitIdentical(reference, RunOn(dataset, opts, workers));
  }
}

}  // namespace
}  // namespace kf::fusion
