// Knowledge-base construction: the Knowledge Vault scenario the paper
// motivates. Fuse extracted triples, then enrich a Freebase-like KB with
// the high-confidence novelties, and measure the precision of what was
// added at several probability thresholds.
//
//   ./kb_construction [threshold]
#include <cstdio>
#include <cstdlib>

#include "eval/gold_standard.h"
#include "kb/knowledge_base.h"
#include "kf/session.h"
#include "synth/corpus.h"

using namespace kf;

int main(int argc, char** argv) {
  double default_threshold = argc > 1 ? std::atof(argv[1]) : 0.9;

  synth::SynthCorpus corpus = synth::GenerateCorpus(synth::SynthConfig());
  std::vector<Label> labels =
      eval::BuildGoldStandard(corpus.dataset, corpus.freebase);
  std::printf("reference KB: %zu triples over %zu data items\n",
              corpus.freebase.num_triples(), corpus.freebase.num_items());

  Session session = Session::Borrow(corpus.dataset);
  Result<fusion::FusionResult> fused =
      session.Fuse(fusion::FusionOptions::PopAccuPlus(), &labels);
  if (!fused.ok()) {
    std::fprintf(stderr, "fusion failed: %s\n",
                 fused.status().ToString().c_str());
    return 1;
  }
  const fusion::FusionResult& result = *fused;

  // Candidate novelties: triples absent from the reference KB. "83% of the
  // extracted triples are not in Freebase" in the paper; the interesting
  // question is how many can be trusted.
  for (double threshold : {0.5, 0.7, 0.9, 0.95}) {
    kb::KnowledgeBase enriched;  // the new triples we would add
    size_t added = 0, correct = 0, unverifiable = 0;
    for (kb::TripleId t = 0; t < corpus.dataset.num_triples(); ++t) {
      if (!result.has_probability[t] ||
          result.probability[t] < threshold) {
        continue;
      }
      const extract::TripleInfo& info = corpus.dataset.triple(t);
      const kb::DataItem& item = corpus.dataset.item(info.item);
      if (corpus.freebase.Contains(item, info.object)) continue;  // known
      enriched.AddTriple(item, info.object);
      ++added;
      // Score against the synthetic world (the "real" truth), which a
      // production system cannot see — that is the point of the demo.
      if (info.true_in_world || info.hierarchy_true) {
        ++correct;
      } else if (labels[t] == Label::kUnknown) {
        ++unverifiable;
      }
    }
    std::printf(
        "threshold %.2f: +%zu new triples, %.1f%% actually true "
        "(%zu would be unverifiable under LCWA)%s\n",
        threshold, added, added ? 100.0 * correct / added : 0.0,
        unverifiable, threshold == default_threshold ? "  <= chosen" : "");
  }

  // Show a handful of concrete promotions at the chosen threshold.
  std::printf("\nsample of promoted triples (subject, predicate, object):\n");
  size_t shown = 0;
  for (kb::TripleId t = 0;
       t < corpus.dataset.num_triples() && shown < 8; ++t) {
    if (!result.has_probability[t] ||
        result.probability[t] < default_threshold) {
      continue;
    }
    const extract::TripleInfo& info = corpus.dataset.triple(t);
    const kb::DataItem& item = corpus.dataset.item(info.item);
    if (corpus.freebase.Contains(item, info.object)) continue;
    const auto& pred = corpus.world.ontology.predicate(item.predicate);
    std::printf("  (entity%u, %s, value%u)  p=%.2f  world says: %s\n",
                item.subject, pred.name.c_str(), info.object,
                result.probability[t],
                info.true_in_world ? "true"
                                   : (info.hierarchy_true
                                          ? "true (hierarchy)"
                                          : "false"));
    ++shown;
  }
  return 0;
}
