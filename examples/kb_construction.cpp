// Knowledge-base construction: the Knowledge Vault scenario the paper
// motivates. Fuse extracted triples, then enrich a Freebase-like KB with
// the high-confidence novelties, and measure the precision of what was
// added at several probability thresholds.
//
//   ./kb_construction [threshold]
#include <cstdio>
#include <cstdlib>

#include "eval/gold_standard.h"
#include "kb/knowledge_base.h"
#include "kf/session.h"
#include "synth/corpus.h"

using namespace kf;

int main(int argc, char** argv) {
  double default_threshold = argc > 1 ? std::atof(argv[1]) : 0.9;

  synth::SynthCorpus corpus = synth::GenerateCorpus(synth::SynthConfig());
  std::vector<Label> labels =
      eval::BuildGoldStandard(corpus.dataset, corpus.freebase);
  std::printf("reference KB: %zu triples over %zu data items\n",
              corpus.freebase.num_triples(), corpus.freebase.num_items());

  Session session = Session::Borrow(corpus.dataset);
  Result<fusion::FusionResult> fused =
      session.Fuse(fusion::FusionOptions::PopAccuPlus(), &labels);
  if (!fused.ok()) {
    std::fprintf(stderr, "fusion failed: %s\n",
                 fused.status().ToString().c_str());
    return 1;
  }

  // The run's verdicts as a fused KB. Ontology predicate names flow in
  // through the naming hook; the gold labels additionally calibrate the
  // raw scores (KbVerdict::calibrated).
  SnapshotNaming naming;
  naming.predicate = [&corpus](kb::PredicateId p) {
    return corpus.world.ontology.predicate(p).name;
  };
  Result<FusedKB> snapshot = session.Snapshot(naming, &labels);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  const FusedKB& fused_kb = *snapshot;

  // Candidate novelties: triples absent from the reference KB. "83% of the
  // extracted triples are not in Freebase" in the paper; the interesting
  // question is how many can be trusted.
  for (double threshold : {0.5, 0.7, 0.9, 0.95}) {
    kb::KnowledgeBase enriched;  // the new triples we would add
    size_t added = 0, correct = 0, unverifiable = 0;
    for (const KbVerdict& v : fused_kb.AboveThreshold(threshold)) {
      const extract::TripleInfo& info = corpus.dataset.triple(v.index);
      const kb::DataItem& item = corpus.dataset.item(info.item);
      if (corpus.freebase.Contains(item, info.object)) continue;  // known
      enriched.AddTriple(item, info.object);
      ++added;
      // Score against the synthetic world (the "real" truth), which a
      // production system cannot see — that is the point of the demo.
      if (info.true_in_world || info.hierarchy_true) {
        ++correct;
      } else if (labels[v.index] == Label::kUnknown) {
        ++unverifiable;
      }
    }
    std::printf(
        "threshold %.2f: +%zu new triples, %.1f%% actually true "
        "(%zu would be unverifiable under LCWA)%s\n",
        threshold, added, added ? 100.0 * correct / added : 0.0,
        unverifiable, threshold == default_threshold ? "  <= chosen" : "");
  }

  // Show a handful of concrete promotions at the chosen threshold (the
  // KB hands them back already ordered by probability).
  std::printf("\nsample of promoted triples (subject, predicate, object):\n");
  size_t shown = 0;
  for (const KbVerdict& v : fused_kb.AboveThreshold(default_threshold)) {
    if (shown >= 8) break;
    const extract::TripleInfo& info = corpus.dataset.triple(v.index);
    const kb::DataItem& item = corpus.dataset.item(info.item);
    if (corpus.freebase.Contains(item, info.object)) continue;
    std::printf("  (%.*s, %.*s, %.*s)  p=%.2f calibrated=%.2f  world "
                "says: %s\n",
                static_cast<int>(v.subject.size()), v.subject.data(),
                static_cast<int>(v.predicate.size()), v.predicate.data(),
                static_cast<int>(v.object.size()), v.object.data(),
                v.probability, v.calibrated,
                info.true_in_world ? "true"
                                   : (info.hierarchy_true
                                          ? "true (hierarchy)"
                                          : "false"));
    ++shown;
  }
  return 0;
}
