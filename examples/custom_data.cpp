// Fusing your own extractions: build an ExtractionDataset by hand (as a
// TSV loader would), fuse it, and read the probabilities back. Shows the
// exact API surface a downstream user needs — no synthetic corpus
// involved.
//
//   ./custom_data
#include <cstdio>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/string_util.h"
#include "extract/dataset.h"
#include "kb/value.h"
#include "kf/session.h"

using namespace kf;

namespace {

// One line of a hypothetical extractions.tsv:
//   subject predicate object extractor url confidence
struct Row {
  const char* subject;
  const char* predicate;
  const char* object;
  const char* extractor;
  const char* url;
  float confidence;
};

// The running example of the paper: Tom Cruise, with a couple of
// conflicting claims and a noisy extractor.
const Row kRows[] = {
    {"TomCruise", "birth_date", "1962-07-03", "dom_extractor",
     "https://en.wikipedia.org/wiki/Tom_Cruise", 0.95f},
    {"TomCruise", "birth_date", "1962-07-03", "txt_extractor",
     "https://en.wikipedia.org/wiki/Tom_Cruise", 0.80f},
    {"TomCruise", "birth_date", "1962-07-03", "dom_extractor",
     "https://www.imdb.com/name/nm0000129", 0.90f},
    {"TomCruise", "birth_date", "1962-07-03", "ano_extractor",
     "https://m.fandango.com/tom-cruise", 0.70f},
    {"TomCruise", "birth_date", "1963-07-03", "txt_extractor",
     "https://celebheights.example.com/tc", 0.40f},
    {"TomCruise", "birth_place", "Syracuse_NY", "dom_extractor",
     "https://en.wikipedia.org/wiki/Tom_Cruise", 0.92f},
    {"TomCruise", "birth_place", "USA", "txt_extractor",
     "https://somefansite.example.com/bio", 0.55f},
    {"TomCruise", "profession", "film_actor", "txt_extractor",
     "https://en.wikipedia.org/wiki/Tom_Cruise", 0.85f},
    {"TomCruise", "profession", "film_producer", "txt_extractor",
     "https://en.wikipedia.org/wiki/Tom_Cruise", 0.81f},
    {"TopGun", "release_year", "1986", "tbl_extractor",
     "https://en.wikipedia.org/wiki/Top_Gun", 0.88f},
    {"TopGun", "release_year", "1996", "tbl_extractor",
     "https://badmoviedb.example.com/topgun", 0.30f},
    {"TopGun", "release_year", "1986", "dom_extractor",
     "https://www.imdb.com/title/tt0092099", 0.93f},
};

}  // namespace

int main() {
  extract::ExtractionDataset dataset;
  StringInterner entities, predicates, objects, extractors, urls, sites;

  // Extractor registry first (ids must be dense).
  std::vector<extract::ExtractorMeta> metas;
  for (const Row& row : kRows) {
    uint32_t id = extractors.Find(row.extractor);
    if (id == StringInterner::kInvalidId) {
      extractors.Intern(row.extractor);
      extract::ExtractorMeta meta;
      meta.name = row.extractor;
      meta.has_confidence = true;
      metas.push_back(meta);
    }
  }
  dataset.SetExtractors(std::move(metas));

  kb::ValueTable values;
  std::vector<extract::SiteId> url_site;
  for (const Row& row : kRows) {
    kb::DataItem item{entities.Intern(row.subject),
                      predicates.Intern(row.predicate)};
    kb::ValueId object =
        values.Intern(kb::Value::OfString(objects.Intern(row.object)));
    // Truth flags are unknown for user data: pass false; the gold standard
    // (if any) comes from a reference KB instead.
    kb::TripleId triple = dataset.InternTriple(item, object, false, false);

    extract::ExtractionRecord record;
    record.triple = triple;
    record.prov.extractor = extractors.Find(row.extractor);
    record.prov.url = urls.Intern(row.url);
    record.prov.site = sites.Intern(SiteOfUrl(row.url));
    record.prov.predicate = item.predicate;
    record.prov.pattern = record.prov.extractor;  // no pattern info
    record.confidence = row.confidence;
    record.has_confidence = true;
    dataset.AddRecord(record);
    if (record.prov.url >= url_site.size()) {
      url_site.resize(record.prov.url + 1);
    }
    url_site[record.prov.url] = record.prov.site;
  }
  dataset.SetUrlSites(std::move(url_site));
  dataset.SetCounts(sites.size(), extractors.size(), predicates.size());

  // Unsupervised fusion at (Extractor, Site) granularity — sensible for a
  // corpus this small. The session owns the dataset from here on; methods
  // are picked by registry name.
  Session session(std::move(dataset));
  fusion::FusionOptions options;
  options.method_name = "popaccu";
  options.granularity = extract::Granularity::ExtractorSite();
  Result<fusion::FusionResult> fused = session.Fuse(options);
  if (!fused.ok()) {
    std::fprintf(stderr, "fusion failed: %s\n",
                 fused.status().ToString().c_str());
    return 1;
  }

  // Read the verdicts back through the fused KB, with the hand-built
  // string tables flowing in as naming hooks.
  SnapshotNaming naming;
  naming.subject = [&](kb::EntityId id) { return entities.Get(id); };
  naming.predicate = [&](kb::PredicateId id) { return predicates.Get(id); };
  naming.object = [&](kb::ValueId id) {
    return objects.Get(values.Get(id).string_id);
  };
  naming.url = [&](extract::UrlId id) { return urls.Get(id); };
  Result<FusedKB> snapshot = session.Snapshot(naming);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  const FusedKB& kb = *snapshot;

  std::printf("%-12s %-14s %-16s %s\n", "subject", "predicate", "object",
              "p(true)");
  for (kb::TripleId t = 0; t < kb.num_triples(); ++t) {
    KbVerdict v = kb.verdict(t);
    std::printf("%-12s %-14s %-16s %.3f%s\n",
                std::string(v.subject).c_str(),
                std::string(v.predicate).c_str(),
                std::string(v.object).c_str(),
                v.has_probability ? v.probability : -1.0,
                v.winner ? "  <= winner" : "");
  }
  std::printf("\nexpected: the 1962 birth date and 1986 release year beat "
              "their rivals;\nprofessions are split by the single-truth "
              "assumption (Section 5.3).\n");
  return 0;
}
