// Querying the fused knowledge base: fuse a TSV of extractions, snapshot
// the run as a kf::FusedKB, and use the KB itself — look up winning
// values, explain a disputed verdict with its provenance evidence, list
// the most confident triples, and round-trip the KB through the
// exportable fused-KB schema. This is the paper's end product as an API
// object: calibrated truth probabilities with the extractors behind them.
//
//   ./query_kb [INPUT.tsv]
#include <cstdio>
#include <string>
#include <utility>

#include "extract/tsv_io.h"
#include "kf/session.h"

using namespace kf;

namespace {

// The running example of the paper (same shape as the checked-in demo
// TSV): conflicting birth dates and release years across extractors.
constexpr const char* kDemo =
    "TomCruise\tbirth_date\t1962-07-03\tdom\thttps://en.wikipedia.org/tc\t0.95\n"
    "TomCruise\tbirth_date\t1962-07-03\ttxt\thttps://www.imdb.com/tc\t0.80\n"
    "TomCruise\tbirth_date\t1962-07-03\tano\thttps://m.fandango.com/tc\t0.70\n"
    "TomCruise\tbirth_date\t1963-07-03\ttxt\thttps://fansite.example.com/tc\t0.40\n"
    "TopGun\trelease_year\t1986\ttbl\thttps://en.wikipedia.org/tg\t0.90\n"
    "TopGun\trelease_year\t1996\ttbl\thttps://badmoviedb.example.com/tg\t0.30\n";

void PrintVerdict(const KbVerdict& v) {
  std::printf("  (%.*s, %.*s, %.*s)  p=%.3f%s%s\n",
              static_cast<int>(v.subject.size()), v.subject.data(),
              static_cast<int>(v.predicate.size()), v.predicate.data(),
              static_cast<int>(v.object.size()), v.object.data(),
              v.probability, v.winner ? "  [winner]" : "",
              v.from_fallback ? "  [fallback]" : "");
}

}  // namespace

int main(int argc, char** argv) {
  Result<extract::TsvCorpus> corpus =
      argc > 1 ? extract::ReadExtractionsTsvFile(argv[1])
               : extract::ReadExtractionsTsv(kDemo);
  if (!corpus.ok()) {
    std::fprintf(stderr, "error: %s\n", corpus.status().ToString().c_str());
    return 1;
  }

  // Fuse with ACCU at (Extractor, Site) granularity, then snapshot: the
  // FusedKB owns a session-independent copy of the verdicts, so the
  // session could append, re-fuse, or go away without touching it.
  Session session = Session::Borrow(corpus->dataset);
  fusion::FusionOptions options;
  options.method_name = "accu";
  options.granularity = extract::Granularity::ExtractorSite();
  Result<fusion::FusionResult> fused = session.Fuse(options);
  if (!fused.ok()) {
    std::fprintf(stderr, "fusion failed: %s\n",
                 fused.status().ToString().c_str());
    return 1;
  }
  Result<FusedKB> snapshot =
      session.Snapshot(SnapshotNaming::FromCorpus(*corpus));
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  FusedKB kb = std::move(snapshot).value();
  std::printf("fused KB: %zu triples over %zu items, %zu provenances, "
              "method %s (%zu rounds)\n\n",
              kb.num_triples(), kb.num_items(), kb.num_provenances(),
              kb.method().c_str(), kb.num_rounds());

  // 1. Lookup: the winning value of a data item.
  std::printf("Lookup(TomCruise, birth_date):\n");
  if (auto v = kb.Lookup("TomCruise", "birth_date")) PrintVerdict(*v);

  // 2. Verdict on a specific (losing) triple.
  std::printf("\nVerdict(TomCruise, birth_date, 1963-07-03):\n");
  if (auto v = kb.Verdict("TomCruise", "birth_date", "1963-07-03")) {
    PrintVerdict(*v);
  }

  // 3. Explain: every provenance behind the verdict, with its converged
  //    accuracy and log-odds vote weight.
  std::printf("\nExplain(TomCruise, birth_date, 1962-07-03):\n");
  for (const KbEvidence& e : kb.Explain("TomCruise", "birth_date",
                                        "1962-07-03")) {
    std::printf("  %s %.*s  claims %.*s  accuracy=%.3f vote=%+.2f%s\n",
                e.supports ? "supporting   " : "contradicting",
                static_cast<int>(e.description.size()),
                e.description.data(),
                static_cast<int>(e.object.size()), e.object.data(),
                e.accuracy, e.vote, e.evaluated ? "" : " (default)");
  }

  // 4. TopK / AboveThreshold: probability-ordered iteration.
  std::printf("\nTopK(3):\n");
  for (const KbVerdict& v : kb.TopK(3)) PrintVerdict(v);
  std::printf("\n%zu triples with probability >= 0.8\n",
              kb.AboveThreshold(0.8).size());

  // 5. Export -> import round-trip: the KB outlives its Session.
  std::string tsv = kb.ToTsv();
  Result<FusedKB> back = FusedKB::FromTsv(tsv);
  if (!back.ok()) {
    std::fprintf(stderr, "round-trip failed: %s\n",
                 back.status().ToString().c_str());
    return 1;
  }
  std::printf("\nexport -> import round-trip: %s (%zu bytes of TSV)\n",
              *back == kb ? "equal" : "DIFFERENT", tsv.size());
  return *back == kb ? 0 : 1;
}
