// Command-line fusion over a TSV of extractions, through the kf::Session
// facade — any method the registry knows can run here:
//
//   ./fuse_tsv INPUT.tsv [OUTPUT.tsv] [--method=NAME]
//              [--granularity=url|site|site_pred|site_pred_pattern]
//              [--theta=0.25] [--filter-by-coverage]
//              [--workers=N] [--shards=N]
//              [--min-prob=P] [--export=KB.tsv]
//              [--save-bin=CORPUS.kfs] [--load-bin=CORPUS.kfs]
//              [--memory-budget=MB] [--spill-dir=PATH]
//              [--fault=SPEC]
//
// Input columns: subject predicate object extractor url [confidence]
// Output columns: subject predicate object probability
// With no INPUT, runs on a built-in demo corpus.
//
// --save-bin writes the parsed corpus as a kf::store binary image
// (~3-4x smaller than the TSV, >5x faster to reload); --load-bin reads
// such an image in place of INPUT.tsv, skipping TSV parsing entirely.
//
// --min-prob=P restricts the output to triples with probability >= P
// (FusedKB::AboveThreshold); --export=KB.tsv additionally writes the full
// fused KB — verdicts plus the provenance table behind them — in the
// re-importable fused-KB schema (FusedKB::ExportTsv). Both need an
// engine method (vote / accu / popaccu), which retains the state the
// snapshot is built from.
//
// --memory-budget=MB runs fusion out-of-core under a resident-column
// budget of MB mebibytes (engine methods only): cold claim-graph shards
// spill to mmap-backed kf::store files and the output is bit-identical
// to the unbudgeted run. --spill-dir=PATH puts the shard files there
// instead of a fresh temp directory.
//
// --fault=SPEC arms a deterministic failpoint schedule (same grammar as
// the KF_FAULT environment variable, e.g. "spill.write=eintr%4(seed=7)")
// before fusing, and the run reports how far down the degradation ladder
// it had to go: transient retries, shards quarantined and rebuilt, or a
// full resident fallback. See docs/api.md, "Fault injection".
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <utility>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "extract/tsv_io.h"
#include "fusion/registry.h"
#include "kf/session.h"
#include "store/store.h"

using namespace kf;

namespace {

constexpr const char* kDemo =
    "TomCruise\tbirth_date\t1962-07-03\tdom\thttps://en.wikipedia.org/tc\t0.95\n"
    "TomCruise\tbirth_date\t1962-07-03\ttxt\thttps://www.imdb.com/tc\t0.80\n"
    "TomCruise\tbirth_date\t1962-07-03\tano\thttps://m.fandango.com/tc\t0.70\n"
    "TomCruise\tbirth_date\t1963-07-03\ttxt\thttps://fansite.example.com/tc\t0.40\n"
    "TopGun\trelease_year\t1986\ttbl\thttps://en.wikipedia.org/tg\t0.90\n"
    "TopGun\trelease_year\t1996\ttbl\thttps://badmoviedb.example.com/tg\t0.30\n";

void Usage() {
  std::fprintf(stderr,
               "usage: fuse_tsv [INPUT.tsv] [OUTPUT.tsv] [--method=NAME]\n"
               "                [--granularity=url|site|site_pred|"
               "site_pred_pattern]\n"
               "                [--theta=X] [--filter-by-coverage]\n"
               "                [--workers=N] [--shards=N]\n"
               "                [--min-prob=P] [--export=KB.tsv]\n"
               "                [--save-bin=CORPUS.kfs] "
               "[--load-bin=CORPUS.kfs]\n"
               "                [--memory-budget=MB] [--spill-dir=PATH]\n"
               "                [--fault=SPEC]\n"
               "methods: %s\n",
               fusion::Registry::NamesCsv().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string input, output, export_path, save_bin, load_bin;
  double min_prob = -1.0;  // < 0: no threshold filtering
  fusion::FusionOptions options = fusion::FusionOptions::PopAccu();
  options.granularity = extract::Granularity::ExtractorSite();

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // These accept both "--flag=value" and "--flag value".
    if (arg == "--export" || arg == "--min-prob" || arg == "--save-bin" ||
        arg == "--load-bin" || arg == "--memory-budget" ||
        arg == "--spill-dir" || arg == "--fault") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s expects a value\n", arg.c_str());
        Usage();
        return 2;
      }
      arg += "=";
      arg += argv[++i];
    }
    if (StartsWith(arg, "--export=")) {
      export_path = arg.substr(9);
      if (export_path.empty()) {
        std::fprintf(stderr, "error: --export expects a path\n");
        Usage();
        return 2;
      }
      continue;
    }
    if (StartsWith(arg, "--save-bin=")) {
      save_bin = arg.substr(11);
      if (save_bin.empty()) {
        std::fprintf(stderr, "error: --save-bin expects a path\n");
        Usage();
        return 2;
      }
      continue;
    }
    if (StartsWith(arg, "--load-bin=")) {
      load_bin = arg.substr(11);
      if (load_bin.empty()) {
        std::fprintf(stderr, "error: --load-bin expects a path\n");
        Usage();
        return 2;
      }
      continue;
    }
    if (StartsWith(arg, "--memory-budget=")) {
      const char* begin = arg.c_str() + 16;
      char* end = nullptr;
      // Same digit-first guard as --workers: strtoull wraps negatives.
      unsigned long long mb = std::strtoull(begin, &end, 10);
      if (end == begin || *end != '\0' ||
          !(begin[0] >= '0' && begin[0] <= '9') || mb == 0 ||
          mb > (1ull << 34)) {
        std::fprintf(stderr,
                     "error: --memory-budget expects a positive size in "
                     "MiB, got '%s'\n",
                     begin);
        Usage();
        return 2;
      }
      options.memory_budget_bytes = static_cast<size_t>(mb) << 20;
      continue;
    }
    if (StartsWith(arg, "--spill-dir=")) {
      options.spill_dir = arg.substr(12);
      if (options.spill_dir.empty()) {
        std::fprintf(stderr, "error: --spill-dir expects a path\n");
        Usage();
        return 2;
      }
      continue;
    }
    if (StartsWith(arg, "--fault=")) {
      // Armed on top of any KF_FAULT schedule already in the environment;
      // the parser rejects the whole spec on any malformed clause.
      Status armed = fault::ArmFromConfig(arg.substr(8));
      if (!armed.ok()) {
        std::fprintf(stderr, "error: --fault: %s\n",
                     armed.ToString().c_str());
        Usage();
        return 2;
      }
      continue;
    }
    if (StartsWith(arg, "--min-prob=")) {
      const char* begin = arg.c_str() + 11;
      char* end = nullptr;
      min_prob = std::strtod(begin, &end);
      if (end == begin || *end != '\0' || !(min_prob >= 0.0) ||
          min_prob > 1.0) {
        std::fprintf(stderr,
                     "error: --min-prob expects a probability in [0,1], "
                     "got '%s'\n",
                     begin);
        Usage();
        return 2;
      }
      continue;
    }
    if (StartsWith(arg, "--method=")) {
      // Validated below against the registry, which reports the full list
      // of valid names on a typo.
      options.method_name = arg.substr(9);
    } else if (StartsWith(arg, "--granularity=")) {
      std::string g = arg.substr(14);
      if (g == "url") {
        options.granularity = extract::Granularity::ExtractorUrl();
      } else if (g == "site") {
        options.granularity = extract::Granularity::ExtractorSite();
      } else if (g == "site_pred") {
        options.granularity = extract::Granularity::ExtractorSitePredicate();
      } else if (g == "site_pred_pattern") {
        options.granularity =
            extract::Granularity::ExtractorSitePredicatePattern();
      } else {
        Usage();
        return 2;
      }
    } else if (StartsWith(arg, "--theta=")) {
      const char* begin = arg.c_str() + 8;
      char* end = nullptr;
      options.min_provenance_accuracy = std::strtod(begin, &end);
      if (end == begin || *end != '\0') {
        std::fprintf(stderr, "error: --theta expects a number, got '%s'\n",
                     begin);
        Usage();
        return 2;
      }
    } else if (StartsWith(arg, "--workers=") ||
               StartsWith(arg, "--shards=")) {
      const bool is_workers = StartsWith(arg, "--workers=");
      const char* begin = arg.c_str() + (is_workers ? 10 : 9);
      char* end = nullptr;
      // strtoull skips leading whitespace and silently wraps negatives
      // ("-1" -> 2^64-1); require the value to start with a digit.
      unsigned long long v = std::strtoull(begin, &end, 10);
      if (end == begin || *end != '\0' ||
          !(begin[0] >= '0' && begin[0] <= '9')) {
        std::fprintf(stderr,
                     "error: %s expects a non-negative integer, got '%s'\n",
                     is_workers ? "--workers" : "--shards", begin);
        Usage();
        return 2;
      }
      if (is_workers) {
        options.num_workers = static_cast<size_t>(v);
      } else {
        options.num_shards = static_cast<size_t>(v);
      }
    } else if (arg == "--filter-by-coverage") {
      options.filter_by_coverage = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (input.empty()) {
      input = arg;
    } else if (output.empty()) {
      output = arg;
    } else {
      Usage();
      return 2;
    }
  }

  // Rejects out-of-range knobs AND unknown --method names (the error
  // lists every registered method).
  Status valid = options.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "error: %s\n", valid.ToString().c_str());
    Usage();
    return 2;
  }

  if (!load_bin.empty() && !input.empty()) {
    std::fprintf(stderr,
                 "error: --load-bin replaces INPUT.tsv; give one or the "
                 "other\n");
    Usage();
    return 2;
  }

  Result<extract::TsvCorpus> corpus =
      !load_bin.empty() ? store::LoadCorpusFile(load_bin)
      : input.empty()   ? extract::ReadExtractionsTsv(kDemo)
                        : extract::ReadExtractionsTsvFile(input);
  if (!corpus.ok()) {
    if (!load_bin.empty()) {
      // A missing or corrupt binary image is a usage-level problem (the
      // path is wrong or the file wasn't produced by --save-bin), not an
      // internal failure: explain and show the flags.
      std::fprintf(stderr, "error: cannot load binary corpus: %s\n",
                   corpus.status().message().c_str());
      Usage();
      return 2;
    }
    std::fprintf(stderr, "error: %s\n", corpus.status().ToString().c_str());
    return 1;
  }

  if (!save_bin.empty()) {
    Status saved = store::WriteCorpusFile(*corpus, save_bin);
    if (!saved.ok()) {
      std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "saved binary corpus (%zu records) to %s\n",
                 corpus->dataset.num_records(), save_bin.c_str());
  }
  std::fprintf(stderr, "%zu records -> %zu unique triples, fusing with %s\n",
               corpus->dataset.num_records(), corpus->dataset.num_triples(),
               options.ToString().c_str());

  Session session = Session::Borrow(corpus->dataset);
  Result<fusion::FusionResult> result = session.Fuse(options);
  if (!result.ok()) {
    // E.g. a method that needs gold labels or a value hierarchy, which a
    // bare TSV cannot provide.
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 2;
  }

  // Budgeted runs report how far down the degradation ladder they went —
  // silence means no I/O failure had to be absorbed.
  if (const spill::SpillStats* sp = session.spill_stats()) {
    if (sp->transient_retries > 0 || sp->shards_quarantined > 0 ||
        sp->resident_fallback) {
      std::fprintf(stderr,
                   "fault recovery: %llu transient retries, %zu shards "
                   "quarantined, %zu rematerialized%s\n",
                   static_cast<unsigned long long>(sp->transient_retries),
                   sp->shards_quarantined, sp->shards_rematerialized,
                   sp->resident_fallback
                       ? ", spill dir abandoned (finished fully resident)"
                       : "");
    }
  }

  // --min-prob / --export work on the fused-KB snapshot (engine methods
  // only — the registry baselines keep no engine state to snapshot).
  std::optional<FusedKB> kb;
  if (!export_path.empty() || min_prob >= 0.0) {
    Result<FusedKB> snap =
        session.Snapshot(SnapshotNaming::FromCorpus(*corpus));
    if (!snap.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   snap.status().ToString().c_str());
      return 2;
    }
    kb = std::move(snap).value();
    if (!export_path.empty()) {
      Status exported = kb->ExportTsv(export_path);
      if (!exported.ok()) {
        std::fprintf(stderr, "error: %s\n", exported.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "exported fused KB (%zu triples, %zu "
                   "provenances) to %s\n",
                   kb->num_triples(), kb->num_provenances(),
                   export_path.c_str());
    }
  }

  std::string tsv;
  if (min_prob >= 0.0) {
    tsv = "subject\tpredicate\tobject\tprobability\n";
    for (const KbVerdict& v : kb->AboveThreshold(min_prob)) {
      tsv += std::string(v.subject) + '\t' + std::string(v.predicate) +
             '\t' + std::string(v.object) + '\t' +
             ToFixed(v.probability, 6) + '\n';
    }
  } else {
    tsv = extract::WriteResultsTsv(*corpus, result->probability,
                                   result->has_probability);
  }
  if (output.empty()) {
    std::fwrite(tsv.data(), 1, tsv.size(), stdout);
  } else {
    Status status = extract::WriteFile(output, tsv);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", output.c_str());
  }
  return 0;
}
