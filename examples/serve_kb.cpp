// Serving-layer demo: a kf::KbServer under a live writer. One writer
// thread streams extraction batches in and republishes (warm re-fusion
// per generation); reader threads answer point queries against whatever
// generation they pinned — lock-free, never blocked by the writer. Shows
// the full Acquire()/Reader lifecycle including a reader that
// deliberately pins generation 1 to the end and proves its answers never
// moved.
//
//   ./serve_kb [seed]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "kf/kb_server.h"
#include "synth/corpus.h"

using namespace kf;

int main(int argc, char** argv) {
  // 1. A synthetic extraction stream: serve the first half immediately,
  //    drip the rest in while readers are live.
  synth::SynthConfig config = synth::SynthConfig::Small();
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);
  synth::SynthCorpus corpus = synth::GenerateCorpus(config);
  const auto& src = corpus.dataset;
  const size_t base = src.num_records() / 2;
  extract::ExtractionDataset dataset = extract::CloneRecordPrefix(src, base);
  std::vector<extract::ExtractionRecord> tail =
      extract::ReinternTail(src, base, &dataset);

  // 2. The server: ACCU with warm-start re-fusion, so generation 2+ are
  //    cheap reconvergences instead of cold reruns.
  KbServer::Options options;
  options.fusion.method = fusion::Method::kAccu;
  options.fusion.max_rounds = 100;
  options.fusion.convergence_epsilon = 1e-3;
  options.fusion.num_shards = 16;
  KbServer server(std::move(dataset), options);

  Result<KbSnapshotStats> first = server.Publish();
  if (!first.ok()) {
    std::fprintf(stderr, "first publish failed: %s\n",
                 first.status().ToString().c_str());
    return 1;
  }
  std::printf("generation %llu live: %zu triples from %zu records "
              "(%zu rounds, %.1f ms)\n",
              static_cast<unsigned long long>(first->seqno),
              first->num_triples, first->num_records, first->num_rounds,
              static_cast<double>(first->build_micros) / 1000.0);

  // A reader that pins generation 1 for the whole run.
  KbSnapshotRef pinned = server.Acquire();

  // 3. Reader threads: each owns a KbServer::Reader (steady state costs
  //    one atomic load) and serves point queries against its pinned
  //    generation while the writer republishes underneath it.
  std::vector<ServedVerdict> probes = server.TopK(8);
  std::atomic<bool> done{false};
  std::atomic<uint64_t> served{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      KbServer::Reader reader(server);
      size_t i = static_cast<size_t>(r);
      while (!done.load(std::memory_order_acquire)) {
        const KbSnapshotRef& snap = reader.Acquire();
        const ServedVerdict& probe = probes[i++ % probes.size()];
        auto v = snap->kb().Lookup(probe.subject, probe.predicate);
        if (v.has_value()) served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // 4. The writer: drip the tail in over 10 generations. Readers keep
  //    serving the previous generation until the atomic publish lands.
  const size_t kBatches = 10;
  size_t next = 0;
  for (size_t b = 0; b < kBatches; ++b) {
    const size_t upto = b + 1 == kBatches
                            ? tail.size()
                            : next + tail.size() / kBatches;
    std::vector<extract::ExtractionRecord> batch(
        tail.begin() + static_cast<ptrdiff_t>(next),
        tail.begin() + static_cast<ptrdiff_t>(upto));
    next = upto;
    Result<KbSnapshotStats> published = server.AppendAndPublish(batch);
    if (!published.ok()) {
      std::fprintf(stderr, "publish failed: %s\n",
                   published.status().ToString().c_str());
      return 1;
    }
    std::printf("generation %llu live: +%zu records, %zu rounds, %.1f ms "
                "(readers served %llu lookups so far)\n",
                static_cast<unsigned long long>(published->seqno),
                batch.size(), published->num_rounds,
                static_cast<double>(published->build_micros) / 1000.0,
                static_cast<unsigned long long>(served.load()));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  // 5. Snapshot semantics: the generation pinned at the start answered
  //    identically the whole time, while the live generation moved on.
  KbSnapshotRef live = server.Acquire();
  std::printf("\npinned generation %llu still serves %zu triples; live "
              "generation %llu serves %zu records\n",
              static_cast<unsigned long long>(pinned->stats().seqno),
              pinned->kb().num_triples(),
              static_cast<unsigned long long>(live->stats().seqno),
              live->stats().num_records);
  KbServer::ServerStats stats = server.stats();
  std::printf("server: %llu publishes, %.1f ms total build, %llu lookups "
              "served\n",
              static_cast<unsigned long long>(stats.publishes),
              static_cast<double>(stats.total_build_micros) / 1000.0,
              static_cast<unsigned long long>(served.load()));
  std::printf("serving demo done\n");
  return 0;
}
