// Extractor audit: use fusion outputs to evaluate extraction components
// without any labeled data — rank extractors and patterns by inferred
// quality and mine high-confidence negative training examples (the paper's
// second consumption mode for low-probability triples).
//
//   ./extractor_audit
#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "eval/gold_standard.h"
#include "kf/session.h"
#include "synth/corpus.h"

using namespace kf;

int main() {
  synth::SynthCorpus corpus = synth::GenerateCorpus(synth::SynthConfig());
  // Fully unsupervised: no gold standard involved in fusion. Batch-only,
  // so the session borrows the dataset.
  Session session = Session::Borrow(corpus.dataset);
  Result<fusion::FusionResult> fused =
      session.Fuse(fusion::FusionOptions::PopAccuPlusUnsup());
  if (!fused.ok()) {
    std::fprintf(stderr, "fusion failed: %s\n",
                 fused.status().ToString().c_str());
    return 1;
  }
  // Per-triple verdicts come from the fused-KB snapshot, not the raw
  // result vectors; extractor names are in the dataset already.
  Result<FusedKB> snapshot = session.Snapshot();
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  const FusedKB& kb = *snapshot;

  // ---- rank extractors by the mean inferred probability of their
  //      unique triples ----
  const size_t n_ext = corpus.dataset.num_extractors();
  std::vector<std::unordered_map<kb::TripleId, char>> uniq(n_ext);
  for (const extract::ExtractionRecord& r : corpus.dataset.records()) {
    uniq[r.prov.extractor].emplace(r.triple, 1);
  }
  struct ExtractorScore {
    size_t id;
    double inferred;
    double actual;
    size_t triples;
  };
  std::vector<ExtractorScore> scores;
  for (size_t e = 0; e < n_ext; ++e) {
    double sum = 0.0, actual = 0.0;
    size_t n = 0;
    for (const auto& [t, one] : uniq[e]) {
      KbVerdict v = kb.verdict(t);
      if (!v.has_probability) continue;
      sum += v.probability;
      const auto& info = corpus.dataset.triple(t);
      actual += info.true_in_world || info.hierarchy_true ? 1.0 : 0.0;
      ++n;
    }
    if (n > 0) scores.push_back({e, sum / n, actual / n, n});
  }
  std::sort(scores.begin(), scores.end(),
            [](const auto& a, const auto& b) {
              return a.inferred > b.inferred;
            });
  std::printf("extractor ranking by inferred quality (no labels used):\n");
  std::printf("%-6s %-10s %-14s %s\n", "rank", "extractor",
              "inferred qual", "actual accuracy (hidden)");
  for (size_t i = 0; i < scores.size(); ++i) {
    std::printf("%-6zu %-10s %-14.3f %.3f\n", i + 1,
                corpus.dataset.extractors()[scores[i].id].name.c_str(),
                scores[i].inferred, scores[i].actual);
  }

  // ---- mine negative training examples ----
  // Triples the fusion is confident are false, with the extraction records
  // that produced them: exactly what a distant-supervision extractor wants
  // as hard negatives.
  size_t negatives = 0;
  std::vector<size_t> per_extractor(n_ext, 0);
  for (const extract::ExtractionRecord& r : corpus.dataset.records()) {
    KbVerdict v = kb.verdict(r.triple);
    if (!v.has_probability) continue;
    if (v.probability < 0.05) {
      ++negatives;
      ++per_extractor[r.prov.extractor];
    }
  }
  std::printf("\nnegative training examples mined (records with p < 0.05): "
              "%zu\n",
              negatives);
  std::printf("per extractor:\n");
  for (size_t e = 0; e < n_ext; ++e) {
    std::printf("  %-6s %zu\n",
                corpus.dataset.extractors()[e].name.c_str(),
                per_extractor[e]);
  }

  // ---- verify the mined negatives are actually negative ----
  size_t sampled = 0, truly_false = 0;
  for (kb::TripleId t = 0; t < corpus.dataset.num_triples(); ++t) {
    KbVerdict v = kb.verdict(t);
    if (!v.has_probability || v.probability >= 0.05) continue;
    const auto& info = corpus.dataset.triple(t);
    ++sampled;
    if (!info.true_in_world && !info.hierarchy_true) ++truly_false;
  }
  std::printf("\nmined negative triples that are really false: %.1f%% of "
              "%zu\n",
              sampled ? 100.0 * truly_false / sampled : 0.0, sampled);
  return 0;
}
