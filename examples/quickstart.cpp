// Quickstart for the public API: generate a small synthetic extraction
// corpus, open a kf::Session over it, fuse with POPACCU+, evaluate, use
// the probabilities, then stream an append through warm-start re-fusion —
// the end-to-end flow of the paper plus the streaming mode.
//
//   ./quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "eval/gold_standard.h"
#include "kf/session.h"
#include "synth/corpus.h"

using namespace kf;

int main(int argc, char** argv) {
  // 1. Build a workload. In a real deployment this is your extraction
  //    pipeline's output; here the synthetic corpus plays that role.
  synth::SynthConfig config = synth::SynthConfig::Small();
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);
  synth::SynthCorpus corpus = synth::GenerateCorpus(config);

  // 2. Label against the reference KB under the local closed-world
  //    assumption (Section 3.2.1). The labels power evaluation and the
  //    semi-supervised accuracy initialization.
  std::vector<Label> labels =
      eval::BuildGoldStandard(corpus.dataset, corpus.freebase);
  eval::GoldStats gold = eval::SummarizeGold(labels);

  // 3. Open a session owning the dataset. The session is the one stable
  //    entry point: batch fusion, evaluation, streaming re-fusion.
  Session session(std::move(corpus.dataset));
  std::printf("corpus: %zu extraction records -> %zu unique triples\n",
              session.dataset().num_records(),
              session.dataset().num_triples());
  std::printf("gold standard: %zu labeled (%.0f%%), accuracy %.2f\n",
              gold.num_labeled, 100.0 * gold.labeled_fraction, gold.accuracy);

  // 4. Fuse. POPACCU+ = POPACCU + coverage filter + fine provenance
  //    granularity + accuracy filter + gold-standard initialization. Any
  //    registry method runs the same way (options.method_name = "...").
  fusion::FusionOptions options = fusion::FusionOptions::PopAccuPlus();
  Result<fusion::FusionResult> fused = session.Fuse(options, &labels);
  if (!fused.ok()) {
    std::fprintf(stderr, "fusion failed: %s\n",
                 fused.status().ToString().c_str());
    return 1;
  }
  const fusion::FusionResult& result = *fused;
  std::printf("fusion: %zu rounds, %zu provenances, %.1f%% of triples "
              "received a probability\n",
              result.num_rounds, result.num_provenances,
              100.0 * result.Coverage());

  // 5. Evaluate calibration and ranking quality.
  Result<eval::ModelReport> report = session.Evaluate(labels);
  std::printf("calibration: deviation %.4f, weighted deviation %.4f, "
              "AUC-PR %.3f\n\n",
              report->deviation, report->weighted_deviation, report->auc_pr);
  std::printf("%s\n", eval::RenderCalibration(report->calibration).c_str());

  // 6. Use the probabilities through the fused KB — the run's verdicts as
  //    a queryable, session-independent object (the paper's three
  //    consumption modes). Passing the labels maps raw scores through the
  //    calibration bins into KbVerdict::calibrated.
  Result<FusedKB> snapshot = session.Snapshot({}, &labels);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  const FusedKB& kb = *snapshot;
  size_t trusted = 0, negatives = 0, active_learning = 0;
  for (size_t t = 0; t < kb.num_triples(); ++t) {
    KbVerdict v = kb.verdict(static_cast<uint32_t>(t));
    if (!v.has_probability) continue;
    if (v.probability > 0.9) {
      ++trusted;  // promote into the KB
    } else if (v.probability < 0.1) {
      ++negatives;  // negative training data for the extractors
    } else if (v.probability >= 0.4 && v.probability < 0.6) {
      ++active_learning;  // candidates for human review
    }
  }
  std::printf("usage split: %zu trusted (p>0.9), %zu negative examples "
              "(p<0.1), %zu for active learning (0.4<=p<0.6)\n",
              trusted, negatives, active_learning);
  // TopK only yields predicted triples, which the coverage filter can
  // leave empty on an adversarial seed.
  std::vector<KbVerdict> top = kb.TopK(1);
  if (!top.empty()) {
    std::printf("most confident triple: (%.*s, %.*s, %.*s) p=%.3f "
                "calibrated=%.3f\n",
                static_cast<int>(top[0].subject.size()),
                top[0].subject.data(),
                static_cast<int>(top[0].predicate.size()),
                top[0].predicate.data(),
                static_cast<int>(top[0].object.size()),
                top[0].object.data(), top[0].probability,
                top[0].calibrated);
  }

  // 7. Stream. Switch the session to ACCU, whose accuracy iteration
  //    converges under convergence_epsilon (POPACCU's popularity rewrite
  //    can limit-cycle on small corpora, so it runs to the round cap),
  //    fuse cold, then append a claim from a fresh pseudo-source. Refuse()
  //    warm-starts from the converged accuracies and iterates only until
  //    reconvergence — a fraction of the cold run's rounds.
  fusion::FusionOptions streaming;
  streaming.method_name = "accu";
  streaming.max_rounds = 100;
  streaming.convergence_epsilon = 1e-3;
  Result<fusion::FusionResult> cold = session.Fuse(streaming);
  if (!cold.ok()) {
    std::fprintf(stderr, "fusion failed: %s\n",
                 cold.status().ToString().c_str());
    return 1;
  }
  extract::ExtractionRecord novel = session.dataset().records()[0];
  // A fresh URL: under the default (Extractor, URL) granularity this is a
  // brand-new pseudo-source, entering at the default accuracy.
  novel.prov.url =
      static_cast<extract::UrlId>(session.dataset().num_urls() + 1);
  Status appended = session.Append({novel});
  if (!appended.ok()) {
    std::fprintf(stderr, "append failed: %s\n",
                 appended.ToString().c_str());
    return 1;
  }
  Result<fusion::FusionResult> warm = session.Refuse();
  if (!warm.ok()) {
    std::fprintf(stderr, "re-fusion failed: %s\n",
                 warm.status().ToString().c_str());
    return 1;
  }
  std::printf("\nstreaming (accu): cold run converged in %zu rounds; after "
              "appending 1 record,\nwarm re-fusion reconverged in %zu "
              "round%s\n",
              cold->num_rounds, warm->num_rounds,
              warm->num_rounds == 1 ? "" : "s");
  return 0;
}
