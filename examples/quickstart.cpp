// Quickstart: generate a small synthetic extraction corpus, fuse it with
// POPACCU+, and inspect calibrated probabilities — the end-to-end flow of
// the paper in ~60 lines.
//
//   ./quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "eval/gold_standard.h"
#include "eval/report.h"
#include "fusion/engine.h"
#include "synth/corpus.h"

using namespace kf;

int main(int argc, char** argv) {
  // 1. Build a workload. In a real deployment this is your extraction
  //    pipeline's output; here the synthetic corpus plays that role.
  synth::SynthConfig config = synth::SynthConfig::Small();
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);
  synth::SynthCorpus corpus = synth::GenerateCorpus(config);
  std::printf("corpus: %zu extraction records -> %zu unique triples\n",
              corpus.dataset.num_records(), corpus.dataset.num_triples());

  // 2. Label against the reference KB under the local closed-world
  //    assumption (Section 3.2.1). The labels power evaluation and the
  //    semi-supervised accuracy initialization.
  std::vector<Label> labels =
      eval::BuildGoldStandard(corpus.dataset, corpus.freebase);
  eval::GoldStats gold = eval::SummarizeGold(labels);
  std::printf("gold standard: %zu labeled (%.0f%%), accuracy %.2f\n",
              gold.num_labeled, 100.0 * gold.labeled_fraction, gold.accuracy);

  // 3. Fuse. POPACCU+ = POPACCU + coverage filter + fine provenance
  //    granularity + accuracy filter + gold-standard initialization.
  fusion::FusionOptions options = fusion::FusionOptions::PopAccuPlus();
  fusion::FusionResult result = fusion::Fuse(corpus.dataset, options,
                                             &labels);
  std::printf("fusion: %zu rounds, %zu provenances, %.1f%% of triples "
              "received a probability\n",
              result.num_rounds, result.num_provenances,
              100.0 * result.Coverage());

  // 4. Evaluate calibration and ranking quality.
  eval::ModelReport report = eval::EvaluateModel("POPACCU+", result, labels);
  std::printf("calibration: deviation %.4f, weighted deviation %.4f, "
              "AUC-PR %.3f\n\n",
              report.deviation, report.weighted_deviation, report.auc_pr);
  std::printf("%s\n", eval::RenderCalibration(report.calibration).c_str());

  // 5. Use the probabilities: the paper's three consumption modes.
  size_t trusted = 0, negatives = 0, active_learning = 0;
  for (size_t t = 0; t < result.probability.size(); ++t) {
    if (!result.has_probability[t]) continue;
    double p = result.probability[t];
    if (p > 0.9) {
      ++trusted;  // promote into the KB
    } else if (p < 0.1) {
      ++negatives;  // negative training data for the extractors
    } else if (p >= 0.4 && p < 0.6) {
      ++active_learning;  // candidates for human review
    }
  }
  std::printf("usage split: %zu trusted (p>0.9), %zu negative examples "
              "(p<0.1), %zu for active learning (0.4<=p<0.6)\n",
              trusted, negatives, active_learning);
  return 0;
}
