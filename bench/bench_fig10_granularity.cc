// Figure 10: effect of provenance granularity on POPACCU. Paper metrics:
//   (Extractor, URL)              Dev .020 WDev .037 AUC .499
//   (Extractor, Site)             Dev .023 WDev .042 AUC .514
//   (Ext, Site, Pred)             Dev .017 WDev .033 AUC .525
//   (Ext, Site, Pred, Pattern)    Dev .012 WDev .032 AUC .522
#include "bench/bench_util.h"
#include "eval/report.h"
#include "fusion/engine.h"

using namespace kf;

int main() {
  const auto& w = bench::GetWorkload();
  bench::PrintHeader("Figure 10", "provenance granularity (POPACCU)");

  struct Row {
    extract::Granularity granularity;
    double paper_dev, paper_wdev, paper_auc;
  };
  Row rows[] = {
      {extract::Granularity::ExtractorUrl(), .020, .037, .499},
      {extract::Granularity::ExtractorSite(), .023, .042, .514},
      {extract::Granularity::ExtractorSitePredicate(), .017, .033, .525},
      {extract::Granularity::ExtractorSitePredicatePattern(), .012, .032,
       .522},
  };
  TextTable table({"granularity", "#provenances", "Dev (paper)",
                   "WDev (paper)", "AUC-PR (paper)"});
  for (const Row& row : rows) {
    fusion::FusionOptions opts = fusion::FusionOptions::PopAccu();
    opts.granularity = row.granularity;
    bench::ValidateOrExit(opts);
    fusion::FusionEngine engine(w.corpus.dataset, opts);
    auto result = engine.Run(&w.labels);
    auto rep = eval::EvaluateModel(row.granularity.ToString(), result,
                                   w.labels);
    table.AddRow({row.granularity.ToString(),
                  StrFormat("%zu", engine.num_provenances()),
                  StrFormat("%.3f (%.3f)", rep.deviation, row.paper_dev),
                  StrFormat("%.3f (%.3f)", rep.weighted_deviation,
                            row.paper_wdev),
                  StrFormat("%.3f (%.3f)", rep.auc_pr, row.paper_auc)});
  }
  table.Print();
  bench::PrintNote(
      "paper: finer (predicate/pattern) granularity improves calibration "
      "and AUC on the Web-scale corpus; at this synthetic scale site-level "
      "pooling is the strongest single effect because per-provenance "
      "support is thousands of times smaller");
  return 0;
}
