// Classic truth-discovery baselines vs the paper's adapted methods. The
// paper excludes Web-link / IR-style methods because their scores are not
// probabilities (Section 4.1); this bench demonstrates it: the baselines
// can rank triples (AUC-PR) but their "probabilities" are badly
// calibrated.
#include "bench/bench_util.h"
#include "eval/report.h"

using namespace kf;

int main() {
  const auto& w = bench::GetWorkload();
  bench::PrintHeader("Baselines",
                     "classic truth-discovery methods vs adapted DF methods");

  TextTable table({"method", "Dev", "WDev", "AUC-PR"});
  std::vector<eval::ModelReport> reports;
  auto add = [&](const std::string& name, const fusion::FusionResult& r) {
    auto rep = eval::EvaluateModel(name, r, w.labels);
    reports.push_back(rep);
    table.AddRow({name, ToFixed(rep.deviation, 3),
                  ToFixed(rep.weighted_deviation, 3),
                  ToFixed(rep.auc_pr, 3)});
  };

  // The baselines run with their documented per-method defaults; the
  // shared fields (granularity, rounds, workers, shards) come from the
  // default FusionOptions, which match the old per-struct defaults.
  add("TruthFinder", bench::RunMethod("truthfinder", w.corpus.dataset));
  add("2-Estimates", bench::RunMethod("two_estimates", w.corpus.dataset));
  add("Investment", bench::RunMethod("investment", w.corpus.dataset));
  add("PooledInvestment",
      bench::RunMethod("pooled_investment", w.corpus.dataset));
  add("VOTE", bench::RunFusion(w.corpus.dataset, fusion::FusionOptions::Vote(),
                           &w.labels));
  add("POPACCU", bench::RunFusion(w.corpus.dataset,
                              fusion::FusionOptions::PopAccu(), &w.labels));
  add("POPACCU+", bench::RunFusion(w.corpus.dataset,
                               fusion::FusionOptions::PopAccuPlus(),
                               &w.labels));
  table.Print();

  // The paper's rationale for rejecting score-based methods: no baseline
  // offers both a usable ranking and calibrated probabilities. POPACCU+
  // must dominate every baseline on BOTH metrics simultaneously.
  bool dominated = true;
  for (size_t i = 0; i < 4; ++i) {
    if (reports[i].weighted_deviation <= reports[6].weighted_deviation &&
        reports[i].auc_pr >= reports[6].auc_pr) {
      dominated = false;
    }
  }
  std::printf(
      "\npaper rationale check — no score-based baseline matches the "
      "Bayesian\nstack on both calibration and ranking: %s\n",
      dominated ? "HOLDS" : "DIFFERS");
  return 0;
}
