// Shared scaffolding for the bench binaries: one lazily generated default
// corpus + gold standard per process, and paper-vs-measured table helpers.
// Every bench prints the rows/series of one table or figure of the paper
// next to the paper's reported numbers (where the paper gives them).
#ifndef KF_BENCH_BENCH_UTIL_H_
#define KF_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/label.h"
#include "common/string_util.h"
#include "common/table.h"
#include "eval/gold_standard.h"
#include "fusion/engine.h"
#include "kf/session.h"
#include "synth/corpus.h"

namespace kf::bench {

/// Every bench funnels its fusion options through here before touching the
/// engine: a bad combination (usually a hand-edited experiment sweep)
/// reports the Status and exits instead of KF_CHECK-aborting deep inside
/// FusionEngine.
inline void ValidateOrExit(const fusion::FusionOptions& options) {
  Status status = options.Validate();
  if (!status.ok()) {
    std::fprintf(stderr, "invalid fusion options (%s): %s\n",
                 options.ToString().c_str(), status.ToString().c_str());
    std::exit(2);
  }
}

/// One validated batch fusion through the public kf::Session facade — the
/// bench drivers' single entry point for every registry method (engine
/// methods via options.method, everything else via options.method_name).
/// Exits with the Status on invalid options or unmet method requirements.
inline fusion::FusionResult RunFusion(
    const extract::ExtractionDataset& dataset,
    const fusion::FusionOptions& options,
    const std::vector<Label>* gold = nullptr,
    const kb::ValueHierarchy* hierarchy = nullptr) {
  Session session = Session::Borrow(dataset);
  session.SetHierarchy(hierarchy);
  Result<fusion::FusionResult> result = session.Fuse(options, gold);
  if (!result.ok()) {
    std::fprintf(stderr, "fusion failed (%s): %s\n",
                 options.ToString().c_str(),
                 result.status().ToString().c_str());
    std::exit(2);
  }
  return std::move(result).value();
}

/// RunFusion with just a registry method name over default options.
inline fusion::FusionResult RunMethod(
    const std::string& method_name,
    const extract::ExtractionDataset& dataset,
    const std::vector<Label>* gold = nullptr,
    const kb::ValueHierarchy* hierarchy = nullptr) {
  fusion::FusionOptions options;
  options.method_name = method_name;
  return RunFusion(dataset, options, gold, hierarchy);
}

struct Workload {
  synth::SynthCorpus corpus;
  std::vector<Label> labels;
};

/// The default corpus all benches share (generated once per process).
inline const Workload& GetWorkload() {
  static Workload* workload = [] {
    auto* w = new Workload();
    synth::SynthConfig config;
    std::fprintf(stderr, "[bench] generating default corpus (seed %llu)...\n",
                 static_cast<unsigned long long>(config.seed));
    w->corpus = synth::GenerateCorpus(config);
    w->labels = eval::BuildGoldStandard(w->corpus.dataset, w->corpus.freebase);
    std::fprintf(stderr,
                 "[bench] corpus: %zu records, %zu unique triples, "
                 "%zu data items\n",
                 w->corpus.dataset.num_records(),
                 w->corpus.dataset.num_triples(),
                 w->corpus.dataset.num_items());
    return w;
  }();
  return *workload;
}

inline void PrintHeader(const std::string& experiment,
                        const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), what.c_str());
  std::printf("==============================================================\n");
}

inline void PrintNote(const std::string& note) {
  std::printf("note: %s\n", note.c_str());
}

/// "paper=0.36 measured=0.34" convenience cell.
inline std::string PaperVsMeasured(double paper, double measured,
                                   int digits = 3) {
  return "paper=" + ToFixed(paper, digits) +
         " measured=" + ToFixed(measured, digits);
}

}  // namespace kf::bench

#endif  // KF_BENCH_BENCH_UTIL_H_
