// Table 3: share and accuracy of functional vs non-functional predicates —
// the motivation for Section 5.3 (multi-truth fusion).
#include <array>

#include "bench/bench_util.h"

using namespace kf;

int main() {
  const auto& w = bench::GetWorkload();
  bench::PrintHeader("Table 3",
                     "functional vs non-functional predicates");
  const auto& dataset = w.corpus.dataset;
  const auto& ontology = w.corpus.world.ontology;

  // index 0 = functional, 1 = non-functional
  std::array<uint64_t, 2> preds = {0, 0};
  std::array<uint64_t, 2> items = {0, 0};
  std::array<uint64_t, 2> triples = {0, 0};
  std::array<uint64_t, 2> labeled = {0, 0};
  std::array<uint64_t, 2> correct = {0, 0};

  std::vector<uint8_t> pred_seen(ontology.num_predicates(), 0);
  for (kb::TripleId t = 0; t < dataset.num_triples(); ++t) {
    const kb::DataItem& item = dataset.item(dataset.triple(t).item);
    size_t f = ontology.predicate(item.predicate).functional ? 0 : 1;
    ++triples[f];
    pred_seen[item.predicate] = 1;
    if (w.labels[t] != Label::kUnknown) {
      ++labeled[f];
      if (w.labels[t] == Label::kTrue) ++correct[f];
    }
  }
  for (kb::DataItemId i = 0; i < dataset.num_items(); ++i) {
    size_t f = ontology.predicate(dataset.item(i).predicate).functional ? 0
                                                                        : 1;
    ++items[f];
  }
  for (kb::PredicateId p = 0; p < ontology.num_predicates(); ++p) {
    if (pred_seen[p]) ++preds[ontology.predicate(p).functional ? 0 : 1];
  }

  double total_preds = static_cast<double>(preds[0] + preds[1]);
  double total_items = static_cast<double>(items[0] + items[1]);
  double total_triples = static_cast<double>(triples[0] + triples[1]);
  TextTable table({"type", "predicates (paper)", "data items (paper)",
                   "triples (paper)", "accuracy (paper)"});
  auto pct = [](uint64_t n, double total) {
    return total > 0 ? StrFormat("%.0f%%", 100.0 * n / total)
                     : std::string("0%");
  };
  table.AddRow({"Functional",
                pct(preds[0], total_preds) + " (28%)",
                pct(items[0], total_items) + " (24%)",
                pct(triples[0], total_triples) + " (32%)",
                StrFormat("%.2f (0.18)",
                          labeled[0] ? double(correct[0]) / labeled[0] : 0)});
  table.AddRow({"Non-functional",
                pct(preds[1], total_preds) + " (72%)",
                pct(items[1], total_items) + " (76%)",
                pct(triples[1], total_triples) + " (68%)",
                StrFormat("%.2f (0.25)",
                          labeled[1] ? double(correct[1]) / labeled[1] : 0)});
  table.Print();
  return 0;
}
