// Figure 12: initializing provenance accuracies from the (sampled) gold
// standard. Paper metrics:
//   POPACCU        Dev .020 WDev .037 AUC .499
//   INITACCU(10%)  Dev .018 WDev .036 AUC .511
//   INITACCU(20%)  Dev .017 WDev .035 AUC .520
//   INITACCU(50%)  Dev .016 WDev .033 AUC .550
//   INITACCU(100%) Dev .015 WDev .029 AUC .589
#include "bench/bench_util.h"
#include "eval/report.h"
#include "fusion/engine.h"

using namespace kf;

int main() {
  const auto& w = bench::GetWorkload();
  bench::PrintHeader("Figure 12", "gold-standard accuracy initialization");

  struct Row {
    double rate;
    double paper_dev, paper_wdev, paper_auc;
  };
  Row rows[] = {
      {0.0, .020, .037, .499},  {0.1, .018, .036, .511},
      {0.2, .017, .035, .520},  {0.5, .016, .033, .550},
      {1.0, .015, .029, .589},
  };
  TextTable table({"gold sample", "Dev (paper)", "WDev (paper)",
                   "AUC-PR (paper)"});
  std::vector<double> aucs;
  for (const Row& row : rows) {
    fusion::FusionOptions opts = fusion::FusionOptions::PopAccu();
    if (row.rate > 0.0) {
      opts.init_accuracy_from_gold = true;
      opts.gold_sample_rate = row.rate;
    }
    auto result = bench::RunFusion(w.corpus.dataset, opts, &w.labels);
    auto rep = eval::EvaluateModel("", result, w.labels);
    aucs.push_back(rep.auc_pr);
    table.AddRow({row.rate == 0.0 ? "none (default A0=0.8)"
                                  : StrFormat("%.0f%%", row.rate * 100),
                  StrFormat("%.3f (%.3f)", rep.deviation, row.paper_dev),
                  StrFormat("%.3f (%.3f)", rep.weighted_deviation,
                            row.paper_wdev),
                  StrFormat("%.3f (%.3f)", rep.auc_pr, row.paper_auc)});
  }
  table.Print();
  std::printf("\npaper shape: AUC-PR rises monotonically with sample rate : "
              "%s\n",
              aucs.back() > aucs[1] && aucs[1] >= aucs.front() - 0.02
                  ? "HOLDS"
                  : "DIFFERS");
  return 0;
}
