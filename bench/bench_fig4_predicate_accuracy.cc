// Figure 4: distribution of per-predicate extraction accuracy. The paper:
// 44% of predicates below 0.3 accuracy, 13% above 0.7.
#include "bench/bench_util.h"
#include "extract/corpus_stats.h"

using namespace kf;

int main() {
  const auto& w = bench::GetWorkload();
  bench::PrintHeader("Figure 4", "distribution of predicate accuracy");
  auto hist = extract::PredicateAccuracyHistogram(w.corpus.dataset, w.labels,
                                                  /*min_labeled=*/20,
                                                  /*num_buckets=*/10);
  TextTable table({"accuracy bucket", "fraction of predicates"});
  for (size_t b = 0; b < hist.size(); ++b) {
    std::string bucket = b + 1 == hist.size()
                             ? "1.0"
                             : StrFormat("[%.1f,%.1f)", 0.1 * b,
                                         0.1 * (b + 1));
    table.AddRow({bucket, ToFixed(hist[b], 3)});
  }
  table.Print();

  double below_03 = hist[0] + hist[1] + hist[2];
  double above_07 = hist[7] + hist[8] + hist[9] + hist[10];
  std::printf("\npredicates with accuracy < 0.3: %s\n",
              bench::PaperVsMeasured(0.44, below_03, 2).c_str());
  std::printf("predicates with accuracy > 0.7: %s\n",
              bench::PaperVsMeasured(0.13, above_07, 2).c_str());
  return 0;
}
