// Figure 20: number of true triples per data item in the gold standard.
// Paper: ~70% of items have 0 extracted truths, ~25% one, ~3% two — which
// is why the single-truth assumption does not hurt more (Section 5.3).
#include "bench/bench_util.h"
#include "extract/corpus_stats.h"

using namespace kf;

int main() {
  const auto& w = bench::GetWorkload();
  bench::PrintHeader("Figure 20", "#truths per data item");
  auto dist = extract::TruthCountDistribution(w.corpus.dataset, w.labels);
  const double paper[] = {0.70, 0.25, 0.03, 0.01, 0.005, 0.003, 0.002};
  TextTable table({"#truths", "fraction of items", "paper (approx)"});
  for (size_t k = 0; k < dist.size(); ++k) {
    table.AddRow({k == 6 ? ">5" : StrFormat("%zu", k), ToFixed(dist[k], 3),
                  ToFixed(paper[k], 3)});
  }
  table.Print();
  std::printf("\nitems with <= 1 truth: %s\n",
              bench::PaperVsMeasured(0.95, dist[0] + dist[1], 2).c_str());
  return 0;
}
