// Figure 14: weighted deviation per round (default vs gold-standard
// initialization), and the effect of the reservoir cap L and round cap R.
// Paper: the big movement happens between rounds 1 and 2; with gold
// initialization even that is small. L=1K matches L=1M; R=25 matches R=5.
#include "bench/bench_util.h"
#include "eval/calibration.h"
#include "eval/report.h"
#include "fusion/engine.h"

using namespace kf;

namespace {

std::vector<double> RoundTrace(const extract::ExtractionDataset& dataset,
                               const std::vector<Label>& labels,
                               fusion::FusionOptions opts) {
  std::vector<double> wdev;
  bench::ValidateOrExit(opts);
  fusion::FusionEngine engine(dataset, opts);
  engine.Run(&labels, [&](size_t, const std::vector<double>& prob,
                          const std::vector<uint8_t>& has) {
    wdev.push_back(
        eval::ComputeCalibration(prob, has, labels).weighted_deviation);
  });
  return wdev;
}

}  // namespace

int main() {
  const auto& w = bench::GetWorkload();
  bench::PrintHeader("Figure 14", "convergence and execution knobs");

  fusion::FusionOptions base = fusion::FusionOptions::PopAccu();
  base.convergence_epsilon = 0.0;  // force all rounds for the trace
  fusion::FusionOptions gs = base;
  gs.init_accuracy_from_gold = true;

  auto trace_default = RoundTrace(w.corpus.dataset, w.labels, base);
  auto trace_gs = RoundTrace(w.corpus.dataset, w.labels, gs);
  TextTable table({"round", "WDev (DefaultAccu)", "WDev (InitAccuByGS)"});
  for (size_t r = 0; r < std::max(trace_default.size(), trace_gs.size());
       ++r) {
    table.AddRow({StrFormat("%zu", r + 1),
                  r < trace_default.size() ? ToFixed(trace_default[r], 4)
                                           : "-",
                  r < trace_gs.size() ? ToFixed(trace_gs[r], 4) : "-"});
  }
  table.Print();

  std::printf("\nsampling & termination (paper: results indistinguishable):\n");
  TextTable knobs({"configuration", "Dev", "WDev", "AUC-PR"});
  auto run = [&](const char* name, size_t cap, size_t rounds) {
    fusion::FusionOptions o = fusion::FusionOptions::PopAccu();
    o.sample_cap = cap;
    o.max_rounds = rounds;
    auto rep = eval::EvaluateModel(
        name, bench::RunFusion(w.corpus.dataset, o, &w.labels), w.labels);
    knobs.AddRow({name, ToFixed(rep.deviation, 4),
                  ToFixed(rep.weighted_deviation, 4),
                  ToFixed(rep.auc_pr, 3)});
    return rep;
  };
  auto base_run = run("L=1M, R=5 (default)", 1000000, 5);
  auto small_l = run("L=1K, R=5", 1000, 5);
  auto big_r = run("L=1M, R=25", 1000000, 25);
  knobs.Print();

  std::printf("\nL=1K ~ L=1M : %s   R=25 ~ R=5 : %s\n",
              std::abs(small_l.weighted_deviation -
                       base_run.weighted_deviation) < 0.01
                  ? "HOLDS"
                  : "DIFFERS",
              std::abs(big_r.weighted_deviation -
                       base_run.weighted_deviation) < 0.01
                  ? "HOLDS"
                  : "DIFFERS");
  return 0;
}
