// Figure 11: provenance selection — filtering by coverage and by accuracy
// threshold theta. Paper metrics:
//   NOFILTERING       Dev .020 WDev .037 AUC .499
//   BYCOV             Dev .016 WDev .038 AUC .511
//   BYCOVACCU(.1)     Dev .010 WDev .035 AUC .495
//   BYCOVACCU(.3/.5/.7/.9): AUC .516/.520/.518/.510, rising then falling
#include "bench/bench_util.h"
#include "eval/report.h"
#include "fusion/engine.h"

using namespace kf;

int main() {
  const auto& w = bench::GetWorkload();
  bench::PrintHeader("Figure 11", "provenance selection (POPACCU)");

  TextTable table({"selection", "Dev", "WDev", "AUC-PR", "coverage"});
  auto run = [&](const std::string& name, bool by_cov, double theta) {
    fusion::FusionOptions opts = fusion::FusionOptions::PopAccu();
    opts.filter_by_coverage = by_cov;
    opts.min_provenance_accuracy = theta;
    auto result = bench::RunFusion(w.corpus.dataset, opts, &w.labels);
    auto rep = eval::EvaluateModel(name, result, w.labels);
    table.AddRow({name, ToFixed(rep.deviation, 3),
                  ToFixed(rep.weighted_deviation, 3),
                  ToFixed(rep.auc_pr, 3), ToFixed(rep.coverage, 3)});
    return rep;
  };
  auto nofilter = run("NoFiltering", false, 0.0);
  auto bycov = run("ByCov", true, 0.0);
  std::vector<eval::ModelReport> theta_reports;
  for (double theta : {0.1, 0.2, 0.3, 0.5, 0.7, 0.9}) {
    theta_reports.push_back(
        run(StrFormat("ByCovAccu(%.1f)", theta), true, theta));
  }
  table.Print();

  std::printf("\npaper shapes:\n");
  std::printf("  ByCov smooths the curve, costs ~8%% coverage : %s\n",
              bycov.coverage < 0.99 && bycov.coverage > 0.75 ? "HOLDS"
                                                             : "DIFFERS");
  std::printf("  low theta improves calibration over ByCov  : %s\n",
              theta_reports[0].weighted_deviation <
                      bycov.weighted_deviation
                  ? "HOLDS"
                  : "DIFFERS");
  bool collapse = theta_reports.back().auc_pr < theta_reports[2].auc_pr;
  std::printf("  large theta eventually hurts AUC-PR        : %s\n",
              collapse ? "HOLDS" : "DIFFERS");
  std::printf("  (NoFiltering baseline WDev %.3f)\n",
              nofilter.weighted_deviation);
  return 0;
}
