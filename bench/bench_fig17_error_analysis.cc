// Figure 17: categorization of POPACCU+'s false positives and false
// negatives. Paper (20 + 20 sampled): FP = 8 common extraction errors,
// 10 closed-world artifacts, 1 wrong value in Freebase, 1 hard to judge;
// FN = 13 multiple truths, 7 specific/general values. Reproduced
// programmatically from the corpus's ground-truth error records with a
// larger sample for stability.
#include "bench/bench_util.h"
#include "eval/error_analysis.h"
#include "fusion/engine.h"

using namespace kf;

int main() {
  const auto& w = bench::GetWorkload();
  bench::PrintHeader("Figure 17", "error analysis of POPACCU+");
  auto result = bench::RunFusion(w.corpus.dataset,
                             fusion::FusionOptions::PopAccuPlus(), &w.labels);

  const size_t kSample = 200;
  auto breakdown = eval::AnalyzeErrors(w.corpus, w.labels, result,
                                       /*prob_hi=*/0.9, /*prob_lo=*/0.1,
                                       kSample, /*seed=*/7);

  auto pct = [](uint64_t n, uint64_t total) {
    return total ? StrFormat("%llu (%.0f%%)", (unsigned long long)n,
                             100.0 * n / total)
                 : std::string("0");
  };
  std::printf("false positives sampled: %llu (predicted >= 0.9, gold false)\n",
              (unsigned long long)breakdown.fp.total);
  TextTable fp({"cause", "count (share)", "paper (of 20)"});
  fp.AddRow({"common extraction error",
             pct(breakdown.fp.common_extraction_error, breakdown.fp.total),
             "8 (40%)"});
  fp.AddRow({"closed-world assumption (LCWA)",
             pct(breakdown.fp.closed_world_assumption, breakdown.fp.total),
             "10 (50%)"});
  fp.AddRow({"  - additional correct value",
             pct(breakdown.fp.lcwa_additional_value, breakdown.fp.total),
             "5"});
  fp.AddRow({"  - more specific value",
             pct(breakdown.fp.lcwa_specific_value, breakdown.fp.total), "3"});
  fp.AddRow({"  - more general value",
             pct(breakdown.fp.lcwa_general_value, breakdown.fp.total), "2"});
  fp.AddRow({"wrong value in reference KB",
             pct(breakdown.fp.wrong_value_in_kb, breakdown.fp.total),
             "1 (5%)"});
  fp.AddRow({"claimed by the source itself",
             pct(breakdown.fp.source_claim, breakdown.fp.total),
             "1 hard to judge"});
  fp.Print();

  std::printf("\nfalse negatives sampled: %llu (predicted <= 0.1, gold true)\n",
              (unsigned long long)breakdown.fn.total);
  TextTable fn({"cause", "count (share)", "paper (of 20)"});
  fn.AddRow({"multiple truths (single-truth assumption)",
             pct(breakdown.fn.multiple_truths, breakdown.fn.total),
             "13 (65%)"});
  fn.AddRow({"specific/general (value hierarchy)",
             pct(breakdown.fn.specific_general_value, breakdown.fn.total),
             "7 (35%)"});
  fn.AddRow({"other (buried by popular false values)",
             pct(breakdown.fn.other, breakdown.fn.total), "0"});
  fn.Print();

  std::printf("\npaper shape: multiple-truths dominates the FNs : %s\n",
              breakdown.fn.multiple_truths >=
                      breakdown.fn.specific_general_value
                  ? "HOLDS"
                  : "DIFFERS");
  return 0;
}
