// Table 2: per-extractor volume and quality — #triples, #pages, #patterns,
// accuracy, and accuracy restricted to confidence >= 0.7.
#include "bench/bench_util.h"
#include "extract/corpus_stats.h"

using namespace kf;

namespace {
struct PaperRow {
  const char* name;
  double accuracy;
  double accuracy_hc;  // < 0 means "No conf." in the paper
};
// Table 2 reference values.
constexpr PaperRow kPaper[] = {
    {"TXT1", 0.36, 0.52}, {"TXT2", 0.18, 0.80}, {"TXT3", 0.25, 0.81},
    {"TXT4", 0.78, 0.91}, {"DOM1", 0.43, 0.63}, {"DOM2", 0.09, 0.62},
    {"DOM3", 0.58, 0.93}, {"DOM4", 0.26, 0.34}, {"DOM5", 0.13, -1.0},
    {"TBL1", 0.24, 0.24}, {"TBL2", 0.69, -1.0}, {"ANO", 0.28, 0.30},
};
}  // namespace

int main() {
  const auto& w = bench::GetWorkload();
  bench::PrintHeader("Table 2", "extractor volume and quality");
  auto stats = extract::ComputeExtractorStats(w.corpus.dataset, w.labels);

  TextTable table({"extractor", "#records", "#uniq", "#pages", "#patterns",
                   "accu (paper)", "accu conf>=.7 (paper)"});
  double lo = 1.0, hi = 0.0;
  for (size_t e = 0; e < stats.size(); ++e) {
    const auto& s = stats[e];
    const auto& p = kPaper[e];
    lo = std::min(lo, s.accuracy);
    hi = std::max(hi, s.accuracy);
    table.AddRow(
        {w.corpus.dataset.extractors()[e].name,
         StrFormat("%llu", (unsigned long long)s.num_records),
         StrFormat("%llu", (unsigned long long)s.num_unique_triples),
         StrFormat("%llu", (unsigned long long)s.num_pages),
         s.num_patterns <= 1 ? "No pat."
                             : StrFormat("%llu",
                                         (unsigned long long)s.num_patterns),
         StrFormat("%.2f (%.2f)", s.accuracy, p.accuracy),
         s.has_confidence
             ? StrFormat("%.2f (%s)", s.accuracy_high_conf,
                         p.accuracy_hc < 0 ? "n/a"
                                           : ToFixed(p.accuracy_hc, 2).c_str())
             : "No conf."});
  }
  table.Print();
  std::printf(
      "\naccuracy spread: measured [%.2f, %.2f], paper [0.09, 0.78]\n", lo,
      hi);
  return 0;
}
