// Figure 7: triple accuracy as a function of the number of URLs it was
// extracted from. Rises with support but fluctuates; drops are caused by
// common errors of one extractor replicated across many pages.
#include "bench/bench_util.h"
#include "extract/corpus_stats.h"

using namespace kf;

int main() {
  const auto& w = bench::GetWorkload();
  bench::PrintHeader("Figure 7", "triple accuracy by #URLs");
  auto bins = extract::AccuracyBySupport(w.corpus.dataset, w.labels,
                                         extract::SupportKind::kUrls,
                                         /*bin_width=*/25,
                                         /*max_support=*/2000);
  TextTable table({"#URLs", "#labeled triples", "accuracy"});
  for (const auto& b : bins) {
    table.AddRow({StrFormat("%llu-%llu",
                            (unsigned long long)b.support_lo,
                            (unsigned long long)b.support_hi),
                  StrFormat("%llu", (unsigned long long)b.num_labeled),
                  ToFixed(b.accuracy, 3)});
  }
  table.Print();

  // Paper: half of the triples come from a single page at accuracy ~0.3.
  auto single = extract::AccuracyBySupport(w.corpus.dataset, w.labels,
                                           extract::SupportKind::kUrls, 1, 2);
  if (!single.empty() && single.front().support_lo == 1) {
    std::printf("\nsingle-URL triples: accuracy %s\n",
                bench::PaperVsMeasured(0.3, single.front().accuracy, 2)
                    .c_str());
  }
  return 0;
}
