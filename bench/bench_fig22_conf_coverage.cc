// Figure 22: coverage of the extracted triples when filtering by a
// confidence threshold. Paper: even a threshold of 0.1 already loses 15%
// of the extracted triples.
#include "bench/bench_util.h"
#include "extract/corpus_stats.h"

using namespace kf;

int main() {
  const auto& w = bench::GetWorkload();
  bench::PrintHeader("Figure 22", "coverage by confidence threshold");
  auto cov = extract::CoverageByConfidenceThreshold(w.corpus.dataset);
  TextTable table({"threshold", "coverage"});
  for (int i = 0; i < 10; ++i) {
    table.AddRow({ToFixed(0.1 * (i + 1), 1), ToFixed(cov[i], 3)});
  }
  table.Print();
  std::printf("\ncoverage lost at threshold 0.1: %s\n",
              bench::PaperVsMeasured(0.15, 1.0 - cov[0], 2).c_str());
  return 0;
}
