// Figure 19: distribution of the Kappa correlation measure over extractor
// pairs, split by same vs different content type. Paper: 53% independent,
// a few weakly positive (same technique), 40% negatively correlated —
// mostly across content types.
#include <map>

#include "bench/bench_util.h"
#include "eval/kappa.h"

using namespace kf;

int main() {
  const auto& w = bench::GetWorkload();
  bench::PrintHeader("Figure 19", "Kappa measure between extractor pairs");
  auto pairs = eval::ComputeExtractorKappas(w.corpus.dataset);

  // Histogram per Fig. 19: buckets of width 0.025 from -0.15 to +0.05.
  auto bucket_of = [](double kappa) {
    int b = static_cast<int>((kappa + 0.15) / 0.025);
    return std::max(-1, std::min(8, b));
  };
  std::map<int, std::pair<int, int>> hist;  // bucket -> (same, diff)
  int positive = 0, negative = 0, independent = 0;
  for (const auto& p : pairs) {
    auto& [same, diff] = hist[bucket_of(p.kappa)];
    (p.same_content ? same : diff) += 1;
    if (p.kappa > 0.001) {
      ++positive;
    } else if (p.kappa < -0.001) {
      ++negative;
    } else {
      ++independent;
    }
  }
  TextTable table({"kappa bucket", "same content", "different content"});
  for (const auto& [b, counts] : hist) {
    std::string name =
        b < 0 ? "< -0.150"
              : StrFormat("[%.3f,%.3f)", -0.15 + 0.025 * b,
                          -0.15 + 0.025 * (b + 1));
    table.AddRow({name, StrFormat("%d", counts.first),
                  StrFormat("%d", counts.second)});
  }
  table.Print();

  int total = static_cast<int>(pairs.size());
  std::printf("\n%d pairs: %.0f%% independent (paper 53%%), %.0f%% "
              "negatively correlated (paper 40%%), %d positive (paper 5)\n",
              total, 100.0 * independent / total, 100.0 * negative / total,
              positive);
  std::printf("paper shape: cross-content pairs dominate the negative "
              "correlations\n");
  return 0;
}
