// Storage-layer benchmarks (google-benchmark): TSV vs kf::store binary
// load/save throughput for the scale-1 synthetic corpus and its fused KB,
// plus the mmap open path. bytes_per_second is the headline metric; the
// *_bytes counters on the write benches expose the on-disk size ratio the
// binary format claims (>=3x smaller, >=5x faster to load than TSV).
//
// scripts/bench.sh runs this binary and merges its JSON into
// BENCH_perf.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "common/logging.h"
#include "extract/tsv_io.h"
#include "kf/fused_kb.h"
#include "kf/session.h"
#include "store/store.h"
#include "synth/corpus.h"

namespace {

using namespace kf;

// The scale-1 synthetic corpus rendered once through the real TSV text,
// so every bench below parses exactly what a user-supplied file contains.
const std::string& CorpusTsv() {
  static const std::string& tsv = *[] {
    synth::SynthCorpus corpus = synth::GenerateCorpus(synth::SynthConfig{});
    return new std::string(synth::RenderExtractionsTsv(corpus.dataset));
  }();
  return tsv;
}

const extract::TsvCorpus& Corpus() {
  static const extract::TsvCorpus& corpus = *[] {
    auto parsed = extract::ReadExtractionsTsv(CorpusTsv());
    KF_CHECK(parsed.ok());
    return new extract::TsvCorpus(std::move(parsed).value());
  }();
  return corpus;
}

const std::string& CorpusBin() {
  static const std::string& bin =
      *new std::string(store::WriteCorpus(Corpus()));
  return bin;
}

const kf::FusedKB& FusedAtScale1() {
  static const kf::FusedKB& kb = *[] {
    kf::Session session = kf::Session::Borrow(Corpus().dataset);
    auto fused = session.Fuse(fusion::FusionOptions::PopAccu());
    KF_CHECK(fused.ok());
    auto snap = session.Snapshot();
    KF_CHECK(snap.ok());
    return new kf::FusedKB(std::move(snap).value());
  }();
  return kb;
}

void SetCorpusThroughput(benchmark::State& state, size_t bytes) {
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(Corpus().dataset.num_records()));
}

// ---- corpus load: the >=5x claim is LoadBin vs LoadTsv bytes/sec ----

void BM_CorpusLoadTsv(benchmark::State& state) {
  const std::string& tsv = CorpusTsv();
  for (auto _ : state) {
    auto corpus = extract::ReadExtractionsTsv(tsv);
    KF_CHECK(corpus.ok());
    benchmark::DoNotOptimize(corpus);
  }
  SetCorpusThroughput(state, tsv.size());
}
BENCHMARK(BM_CorpusLoadTsv)->Unit(benchmark::kMillisecond);

void BM_CorpusLoadBin(benchmark::State& state) {
  const std::string& bin = CorpusBin();
  for (auto _ : state) {
    auto corpus = store::LoadCorpus(bin);
    KF_CHECK(corpus.ok());
    benchmark::DoNotOptimize(corpus);
  }
  SetCorpusThroughput(state, bin.size());
}
BENCHMARK(BM_CorpusLoadBin)->Unit(benchmark::kMillisecond);

// Open + validate the mmap view without materializing: the zero-copy
// serving path, where load cost is checksums + cross-checks only.
void BM_CorpusMmapOpen(benchmark::State& state) {
  const std::string path = "/tmp/kf_bench_store_corpus.kfs";
  KF_CHECK_OK(store::WriteCorpusFile(Corpus(), path));
  for (auto _ : state) {
    auto view = store::CorpusMmapView::Open(path);
    KF_CHECK(view.ok());
    benchmark::DoNotOptimize(view);
  }
  SetCorpusThroughput(state, CorpusBin().size());
  std::remove(path.c_str());
}
BENCHMARK(BM_CorpusMmapOpen)->Unit(benchmark::kMillisecond);

// ---- corpus save: *_bytes counters carry the >=3x size claim ----

void BM_CorpusWriteTsv(benchmark::State& state) {
  const extract::TsvCorpus& corpus = Corpus();
  size_t bytes = 0;
  for (auto _ : state) {
    std::string out = extract::WriteExtractionsTsv(corpus);
    bytes = out.size();
    benchmark::DoNotOptimize(out);
  }
  SetCorpusThroughput(state, bytes);
  state.counters["tsv_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_CorpusWriteTsv)->Unit(benchmark::kMillisecond);

void BM_CorpusWriteBin(benchmark::State& state) {
  const extract::TsvCorpus& corpus = Corpus();
  size_t bytes = 0;
  for (auto _ : state) {
    std::string out = store::WriteCorpus(corpus);
    bytes = out.size();
    benchmark::DoNotOptimize(out);
  }
  SetCorpusThroughput(state, bytes);
  state.counters["bin_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_CorpusWriteBin)->Unit(benchmark::kMillisecond);

// ---- fused-KB import: same comparison on the downstream artifact ----

void BM_FusedKbImportTsv(benchmark::State& state) {
  const std::string tsv = FusedAtScale1().ToTsv();
  size_t triples = 0;
  for (auto _ : state) {
    auto kb = kf::FusedKB::FromTsv(tsv);
    KF_CHECK(kb.ok());
    triples = kb->num_triples();
    benchmark::DoNotOptimize(kb);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tsv.size()));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(triples));
  state.counters["tsv_bytes"] = static_cast<double>(tsv.size());
}
BENCHMARK(BM_FusedKbImportTsv)->Unit(benchmark::kMillisecond);

void BM_FusedKbImportBin(benchmark::State& state) {
  const std::string bin = FusedAtScale1().ToBinary();
  size_t triples = 0;
  for (auto _ : state) {
    auto kb = kf::FusedKB::FromBinary(bin);
    KF_CHECK(kb.ok());
    triples = kb->num_triples();
    benchmark::DoNotOptimize(kb);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bin.size()));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(triples));
  state.counters["bin_bytes"] = static_cast<double>(bin.size());
}
BENCHMARK(BM_FusedKbImportBin)->Unit(benchmark::kMillisecond);

}  // namespace

// Same build-type context marker as bench_perf: scripts/bench.sh refuses
// to record from a non-release build, and bench_compare.py warns when a
// baseline's kf_build_type says "debug".
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("kf_build_type", "release");
#else
  benchmark::AddCustomContext("kf_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
