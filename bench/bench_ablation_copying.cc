// Ablation: robustness to copying between sources. The paper adopts
// POPACCU over ACCU partly because "POPACCU is more robust than ACCU in
// case there exists copying between the sources, because copied false
// values may be considered as popular false values" (Section 4.1). This
// bench sweeps the corpus copy probability and compares the two.
#include "bench/bench_util.h"
#include "eval/gold_standard.h"
#include "eval/report.h"
#include "fusion/engine.h"

using namespace kf;

int main() {
  bench::PrintHeader("Ablation",
                     "ACCU vs POPACCU robustness to copying (Section 4.1)");
  TextTable table({"copy prob", "ACCU WDev", "POPACCU WDev", "ACCU AUC",
                   "POPACCU AUC"});
  double accu_drop = 0.0, pop_drop = 0.0;
  double accu_base = 0.0, pop_base = 0.0;
  for (double copy_prob : {0.0, 0.15, 0.3, 0.5}) {
    synth::SynthConfig config;
    config.copy_prob = copy_prob;
    config.copy_fraction = 0.7;
    auto corpus = synth::GenerateCorpus(config);
    auto labels = eval::BuildGoldStandard(corpus.dataset, corpus.freebase);
    auto accu = eval::EvaluateModel(
        "ACCU",
        bench::RunFusion(corpus.dataset, fusion::FusionOptions::Accu(), &labels),
        labels);
    auto pop = eval::EvaluateModel(
        "POPACCU",
        bench::RunFusion(corpus.dataset, fusion::FusionOptions::PopAccu(),
                     &labels),
        labels);
    table.AddRow({ToFixed(copy_prob, 2),
                  ToFixed(accu.weighted_deviation, 4),
                  ToFixed(pop.weighted_deviation, 4),
                  ToFixed(accu.auc_pr, 3), ToFixed(pop.auc_pr, 3)});
    if (copy_prob == 0.0) {
      accu_base = accu.auc_pr;
      pop_base = pop.auc_pr;
    } else if (copy_prob == 0.5) {
      accu_drop = accu_base - accu.auc_pr;
      pop_drop = pop_base - pop.auc_pr;
    }
  }
  table.Print();
  std::printf(
      "\nAUC-PR lost when half the pages copy: ACCU %.3f, POPACCU %.3f\n",
      accu_drop, pop_drop);
  std::printf("paper shape: POPACCU degrades less under copying : %s\n",
              pop_drop <= accu_drop + 0.01 ? "HOLDS" : "DIFFERS");
  return 0;
}
