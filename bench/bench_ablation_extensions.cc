// Ablation of the Section 5 future directions implemented in
// fusion/ext/: each is evaluated on the sub-population it targets, next
// to POPACCU+ on the same population.
#include "bench/bench_util.h"
#include "eval/report.h"

using namespace kf;

namespace {

// Evaluates only the triples selected by `mask` (true = keep label).
eval::ModelReport EvaluateOn(const std::string& name,
                             const fusion::FusionResult& result,
                             const std::vector<Label>& labels,
                             const std::vector<uint8_t>& mask) {
  std::vector<Label> filtered(labels.size(), Label::kUnknown);
  for (size_t t = 0; t < labels.size(); ++t) {
    if (mask[t]) filtered[t] = labels[t];
  }
  return eval::EvaluateModel(name, result, filtered);
}

}  // namespace

int main() {
  const auto& w = bench::GetWorkload();
  const auto& dataset = w.corpus.dataset;
  const auto& ontology = w.corpus.world.ontology;
  bench::PrintHeader("Ablation",
                     "Section 5 extensions vs POPACCU+ on targeted slices");

  auto plus = bench::RunFusion(dataset, fusion::FusionOptions::PopAccuPlus(),
                           &w.labels);

  // ---- 5.3 multi-truth (non-functional predicates) ----
  std::vector<uint8_t> nonfunc(dataset.num_triples(), 0);
  std::vector<uint8_t> all(dataset.num_triples(), 1);
  for (kb::TripleId t = 0; t < dataset.num_triples(); ++t) {
    const auto& item = dataset.item(dataset.triple(t).item);
    if (!ontology.predicate(item.predicate).functional) nonfunc[t] = 1;
  }
  // LatentTruth at its documented fine granularity, via the registry.
  fusion::FusionOptions ltm_opts;
  ltm_opts.method_name = "latent_truth";
  ltm_opts.granularity =
      extract::Granularity::ExtractorSitePredicatePattern();
  auto ltm = bench::RunFusion(dataset, ltm_opts);
  // Recall of true triples at p > 0.5 on multi-truth items is where the
  // single-truth assumption hurts (65% of the paper's false negatives).
  auto recall_at_half = [&](const fusion::FusionResult& r,
                            const std::vector<uint8_t>& mask) {
    uint64_t truths = 0, found = 0;
    for (kb::TripleId t = 0; t < dataset.num_triples(); ++t) {
      if (!mask[t] || w.labels[t] != Label::kTrue) continue;
      ++truths;
      if (r.has_probability[t] && r.probability[t] > 0.5) ++found;
    }
    return truths ? static_cast<double>(found) / truths : 0.0;
  };
  std::printf("5.3 multi-truth fusion (non-functional predicates):\n");
  TextTable t53({"model", "WDev", "AUC-PR", "recall@p>.5 (true triples)"});
  auto plus_nf = EvaluateOn("POPACCU+", plus, w.labels, nonfunc);
  auto ltm_nf = EvaluateOn("LatentTruth", ltm, w.labels, nonfunc);
  t53.AddRow({"POPACCU+", ToFixed(plus_nf.weighted_deviation, 3),
              ToFixed(plus_nf.auc_pr, 3),
              ToFixed(recall_at_half(plus, nonfunc), 3)});
  t53.AddRow({"LatentTruth (multi-truth)",
              ToFixed(ltm_nf.weighted_deviation, 3),
              ToFixed(ltm_nf.auc_pr, 3),
              ToFixed(recall_at_half(ltm, nonfunc), 3)});
  t53.Print();

  // ---- 5.4 hierarchy-aware fusion ----
  std::vector<uint8_t> hier(dataset.num_triples(), 0);
  for (kb::TripleId t = 0; t < dataset.num_triples(); ++t) {
    const auto& item = dataset.item(dataset.triple(t).item);
    if (ontology.predicate(item.predicate).hierarchical_values) hier[t] = 1;
  }
  fusion::FusionOptions hier_opts = fusion::FusionOptions::PopAccuPlus();
  hier_opts.method_name = "hierarchy";
  auto hier_result = bench::RunFusion(dataset, hier_opts, &w.labels,
                                      &w.corpus.world.hierarchy);
  std::printf("\n5.4 hierarchy-aware fusion (hierarchical-value predicates):\n");
  TextTable t54({"model", "WDev", "AUC-PR", "recall@p>.5 (true triples)"});
  auto plus_h = EvaluateOn("POPACCU+", plus, w.labels, hier);
  auto hier_h = EvaluateOn("HierarchyAware", hier_result, w.labels, hier);
  t54.AddRow({"POPACCU+", ToFixed(plus_h.weighted_deviation, 3),
              ToFixed(plus_h.auc_pr, 3),
              ToFixed(recall_at_half(plus, hier), 3)});
  t54.AddRow({"HierarchyAware", ToFixed(hier_h.weighted_deviation, 3),
              ToFixed(hier_h.auc_pr, 3),
              ToFixed(recall_at_half(hier_result, hier), 3)});
  t54.Print();

  // ---- 5.5 confidence-weighted fusion ----
  fusion::FusionOptions cw_opts = fusion::FusionOptions::PopAccuPlusUnsup();
  cw_opts.method_name = "confidence_weighted";
  auto cw = bench::RunFusion(dataset, cw_opts, &w.labels);
  std::printf("\n5.5 confidence-weighted fusion (all triples):\n");
  TextTable t55({"model", "WDev", "AUC-PR"});
  auto plus_all = EvaluateOn("POPACCU+", plus, w.labels, all);
  auto cw_all = EvaluateOn("ConfidenceWeighted", cw, w.labels, all);
  t55.AddRow({"POPACCU+", ToFixed(plus_all.weighted_deviation, 3),
              ToFixed(plus_all.auc_pr, 3)});
  t55.AddRow({"ConfidenceWeighted", ToFixed(cw_all.weighted_deviation, 3),
              ToFixed(cw_all.auc_pr, 3)});
  t55.Print();

  // ---- 5.1 source/extractor separation ----
  auto se = bench::RunMethod("source_extractor", dataset);
  std::printf("\n5.1 source/extractor separation (all triples, "
              "unsupervised):\n");
  TextTable t51({"model", "WDev", "AUC-PR"});
  auto pop = bench::RunFusion(dataset, fusion::FusionOptions::PopAccu(),
                          &w.labels);
  auto pop_all = EvaluateOn("POPACCU (unsup)", pop, w.labels, all);
  auto se_all = EvaluateOn("SourceExtractor", se, w.labels, all);
  t51.AddRow({"POPACCU (unsup)", ToFixed(pop_all.weighted_deviation, 3),
              ToFixed(pop_all.auc_pr, 3)});
  t51.AddRow({"SourceExtractor (two-factor)",
              ToFixed(se_all.weighted_deviation, 3),
              ToFixed(se_all.auc_pr, 3)});
  t51.Print();

  std::printf(
      "\nexpected shapes: LatentTruth lifts multi-truth recall; "
      "HierarchyAware lifts hierarchical recall;\nthe unsupervised "
      "two-factor model competes with POPACCU without gold data.\n");
  return 0;
}
