// Figure 21: coverage and accuracy by extraction confidence for the four
// representative extractors (TXT1, DOM2, TBL1, ANO). Paper: DOM2/ANO
// assign bimodal confidences, TXT1 hugs 0.5; TXT1/DOM2 confidences are
// informative, ANO's are not, TBL1's accuracy peaks at medium confidence.
#include "bench/bench_util.h"
#include "extract/corpus_stats.h"

using namespace kf;

int main() {
  const auto& w = bench::GetWorkload();
  bench::PrintHeader("Figure 21", "coverage and accuracy by confidence");

  const char* names[] = {"TXT1", "DOM2", "TBL1", "ANO"};
  std::vector<extract::ExtractorId> ids;
  for (const char* name : names) {
    for (size_t e = 0; e < w.corpus.dataset.num_extractors(); ++e) {
      if (w.corpus.dataset.extractors()[e].name == name) {
        ids.push_back(static_cast<extract::ExtractorId>(e));
      }
    }
  }
  std::vector<extract::ConfidenceProfile> profiles;
  for (auto id : ids) {
    profiles.push_back(
        extract::ComputeConfidenceProfile(w.corpus.dataset, w.labels, id));
  }

  std::printf("coverage by confidence bucket:\n");
  TextTable cov({"confidence", "TXT1", "DOM2", "TBL1", "ANO"});
  for (int b = 0; b < 10; ++b) {
    std::vector<std::string> row = {
        StrFormat("[%.1f,%.1f)", 0.1 * b, 0.1 * (b + 1))};
    for (const auto& p : profiles) row.push_back(ToFixed(p.coverage[b], 3));
    cov.AddRow(std::move(row));
  }
  cov.Print();

  std::printf("\naccuracy by confidence bucket:\n");
  TextTable acc({"confidence", "TXT1", "DOM2", "TBL1", "ANO"});
  for (int b = 0; b < 10; ++b) {
    std::vector<std::string> row = {
        StrFormat("[%.1f,%.1f)", 0.1 * b, 0.1 * (b + 1))};
    for (const auto& p : profiles) {
      row.push_back(p.count[b] >= 10 ? ToFixed(p.accuracy[b], 3) : "-");
    }
    acc.AddRow(std::move(row));
  }
  acc.Print();

  // Shape checks.
  auto informative = [](const extract::ConfidenceProfile& p) {
    return p.accuracy[9] > p.accuracy[0] + 0.1;
  };
  std::printf("\nTXT1 confidence informative : %s (paper: yes)\n",
              informative(profiles[0]) ? "yes" : "no");
  std::printf("DOM2 confidence informative : %s (paper: yes)\n",
              informative(profiles[1]) ? "yes" : "no");
  std::printf("ANO confidence informative  : %s (paper: no)\n",
              informative(profiles[3]) ? "yes" : "no");
  double mid = profiles[2].accuracy[4] + profiles[2].accuracy[5];
  double ends = profiles[2].accuracy[0] + profiles[2].accuracy[9];
  std::printf("TBL1 accuracy peaks mid-confidence : %s (paper: yes)\n",
              mid > ends ? "yes" : "no");
  return 0;
}
