// Figure 16: distribution of predicted probabilities under POPACCU+.
// Paper: >70% of triples below 0.1; ~10% above 0.9.
#include <cmath>

#include "bench/bench_util.h"
#include "fusion/engine.h"

using namespace kf;

int main() {
  const auto& w = bench::GetWorkload();
  bench::PrintHeader("Figure 16",
                     "distribution of predicted probabilities (POPACCU+)");
  auto result = bench::RunFusion(w.corpus.dataset,
                             fusion::FusionOptions::PopAccuPlus(), &w.labels);

  std::array<uint64_t, 11> hist = {};
  uint64_t total = 0;
  for (size_t t = 0; t < result.probability.size(); ++t) {
    if (!result.has_probability[t]) continue;
    double p = result.probability[t];
    size_t b = p >= 1.0 ? 10 : static_cast<size_t>(p * 10);
    ++hist[b];
    ++total;
  }
  TextTable table({"probability", "fraction of triples", "log10"});
  for (size_t b = 0; b < hist.size(); ++b) {
    double frac = total ? static_cast<double>(hist[b]) / total : 0;
    table.AddRow({b == 10 ? "1.0" : StrFormat("[%.1f,%.1f)", 0.1 * b,
                                              0.1 * (b + 1)),
                  ToFixed(frac, 4),
                  frac > 0 ? ToFixed(std::log10(frac), 2) : "-inf"});
  }
  table.Print();

  double low = total ? static_cast<double>(hist[0]) / total : 0;
  double high = total ? static_cast<double>(hist[9] + hist[10]) / total : 0;
  std::printf("\ntriples with p < 0.1 : %s\n",
              bench::PaperVsMeasured(0.70, low, 2).c_str());
  std::printf("triples with p >= 0.9: %s\n",
              bench::PaperVsMeasured(0.10, high, 2).c_str());
  return 0;
}
