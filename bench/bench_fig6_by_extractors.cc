// Figure 6: triple accuracy as a function of the number of distinct
// extractors that extracted it. Rises overall; the paper notes occasional
// drops caused by correlated extractors.
#include "bench/bench_util.h"
#include "extract/corpus_stats.h"

using namespace kf;

int main() {
  const auto& w = bench::GetWorkload();
  bench::PrintHeader("Figure 6", "triple accuracy by #extractors");
  auto bins = extract::AccuracyBySupport(w.corpus.dataset, w.labels,
                                         extract::SupportKind::kExtractors,
                                         /*bin_width=*/1, /*max_support=*/12);
  TextTable table({"#extractors", "#labeled triples", "accuracy"});
  for (const auto& b : bins) {
    table.AddRow({StrFormat("%llu", (unsigned long long)b.support_lo),
                  StrFormat("%llu", (unsigned long long)b.num_labeled),
                  ToFixed(b.accuracy, 3)});
  }
  table.Print();

  std::printf(
      "\npaper shape: accuracy rises from ~0.3 at 1 extractor to ~0.9 at 7,"
      "\nwith a drop around 8-9 caused by extractor correlation\n");
  if (bins.size() >= 2) {
    std::printf("measured: %.2f at 1 extractor -> %.2f at %llu extractors\n",
                bins.front().accuracy, bins.back().accuracy,
                (unsigned long long)bins.back().support_lo);
  }
  return 0;
}
