// kf::KbServer serving benchmarks (google-benchmark): closed-loop read
// QPS with N reader threads hammering Acquire()+Lookup while one live
// appender thread streams batches in and republishes continuously, plus
// the writer-side publish latency on its own. items/sec of BM_KbServerQps
// is served lookups per second under a live writer — the serving-layer
// headline number scripts/bench_compare.py gates on.
//
// scripts/bench.sh runs this binary next to bench_perf and merges both
// into BENCH_perf.json. Note: on a single-core host the reader counts
// measure scheduling interleave, not parallel speedup; compare series
// recorded on the same machine only.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "kf/kb_server.h"
#include "synth/corpus.h"

namespace {

using namespace kf;

KbServer::Options ServerOptions() {
  KbServer::Options options;
  // The streaming configuration: ACCU reconverges under warm start (see
  // kf_session_test), so every republish is a cheap warm Refuse.
  options.fusion.method = fusion::Method::kAccu;
  options.fusion.max_rounds = 100;
  options.fusion.convergence_epsilon = 1e-3;
  options.fusion.num_shards = 16;
  options.fusion.num_workers = 1;  // serving threads own the parallelism
  bench::ValidateOrExit(options.fusion);
  return options;
}

/// Shared serving context: a server over half the default corpus plus the
/// re-interned other half as append batches, built once per process and
/// reused across reader counts (the generation counter just keeps
/// climbing, which is exactly the production shape).
struct ServeCtx {
  std::unique_ptr<KbServer> server;
  std::vector<std::vector<extract::ExtractionRecord>> batches;
  std::atomic<size_t> next_batch{0};
  // Probe keys sampled from generation 1, so every generation can answer.
  std::vector<std::pair<std::string, std::string>> probes;

  ServeCtx() {
    synth::SynthConfig config = synth::SynthConfig().Scaled(0.5);
    synth::SynthCorpus corpus = synth::GenerateCorpus(config);
    const auto& src = corpus.dataset;
    const size_t base = src.num_records() / 2;
    extract::ExtractionDataset dataset =
        extract::CloneRecordPrefix(src, base);
    std::vector<extract::ExtractionRecord> tail =
        extract::ReinternTail(src, base, &dataset);
    server = std::make_unique<KbServer>(std::move(dataset), ServerOptions());

    constexpr size_t kBatch = 64;
    for (size_t i = 0; i < tail.size(); i += kBatch) {
      batches.emplace_back(
          tail.begin() + static_cast<ptrdiff_t>(i),
          tail.begin() +
              static_cast<ptrdiff_t>(std::min(i + kBatch, tail.size())));
    }

    Result<KbSnapshotStats> first = server->Publish();
    if (!first.ok()) {
      std::fprintf(stderr, "first publish failed: %s\n",
                   first.status().ToString().c_str());
      std::exit(2);
    }
    for (const ServedVerdict& v : server->TopK(64)) {
      probes.emplace_back(v.subject, v.predicate);
    }
  }

  /// One writer step: drip the next batch while any remain, then keep
  /// republishing warm (generation++ either way).
  void WriterStep() {
    const size_t b = next_batch.fetch_add(1, std::memory_order_relaxed);
    Result<KbSnapshotStats> published =
        b < batches.size() ? server->AppendAndPublish(batches[b])
                           : server->Publish();
    if (!published.ok()) {
      std::fprintf(stderr, "publish failed: %s\n",
                   published.status().ToString().c_str());
      std::exit(2);
    }
  }
};

ServeCtx& Ctx() {
  static ServeCtx& ctx = *new ServeCtx();
  return ctx;
}

/// Closed-loop serving QPS: every benchmark thread is a reader holding a
/// KbServer::Reader handle; thread 0 additionally runs the live appender
/// in a background thread for the duration of its measurement loop. Each
/// iteration serves one point lookup through the pinned snapshot.
void BM_KbServerQps(benchmark::State& state) {
  ServeCtx& ctx = Ctx();
  std::thread writer;
  std::atomic<bool> stop{false};
  if (state.thread_index() == 0) {
    writer = std::thread([&ctx, &stop] {
      while (!stop.load(std::memory_order_acquire)) ctx.WriterStep();
    });
  }

  KbServer::Reader reader(*ctx.server);
  size_t probe = static_cast<size_t>(state.thread_index());
  uint64_t generations_seen = 0;
  uint64_t last_seqno = 0;
  for (auto _ : state) {
    const KbSnapshotRef& snap = reader.Acquire();
    const auto& key = ctx.probes[probe % ctx.probes.size()];
    ++probe;
    auto v = snap->kb().Lookup(key.first, key.second);
    benchmark::DoNotOptimize(v);
    if (reader.seqno() != last_seqno) {
      last_seqno = reader.seqno();
      ++generations_seen;
    }
  }

  if (state.thread_index() == 0) {
    stop.store(true, std::memory_order_release);
    writer.join();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["generations_seen"] = benchmark::Counter(
      static_cast<double>(generations_seen), benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_KbServerQps)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

/// Writer-side cost: one warm AppendAndPublish/Publish step per
/// iteration, no readers. items/sec = publishes per second.
void BM_KbServerPublish(benchmark::State& state) {
  ServeCtx& ctx = Ctx();
  for (auto _ : state) ctx.WriterStep();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_KbServerPublish)->Unit(benchmark::kMillisecond);

/// The uncontended read path on a pinned snapshot — the ceiling the QPS
/// series is measured against.
void BM_KbServerSnapshotLookup(benchmark::State& state) {
  ServeCtx& ctx = Ctx();
  KbSnapshotRef snap = ctx.server->Acquire();
  size_t probe = 0;
  for (auto _ : state) {
    const auto& key = ctx.probes[probe % ctx.probes.size()];
    ++probe;
    auto v = snap->kb().Lookup(key.first, key.second);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_KbServerSnapshotLookup);

}  // namespace

// Same build-type context marker as bench_perf: scripts/bench.sh refuses
// to record BENCH_perf.json from a non-release binary.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("kf_build_type", "release");
#else
  benchmark::AddCustomContext("kf_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
