// Performance microbenchmarks (google-benchmark): MapReduce engine
// scaling, claim construction, and end-to-end fusion throughput across
// corpus scales and worker counts. The paper's Section 4.1 motivation:
// the pipeline must scale out and bound per-reducer work via sampling.
#include <benchmark/benchmark.h>

#include "eval/gold_standard.h"
#include "fusion/claims.h"
#include "fusion/engine.h"
#include "mr/mapreduce.h"
#include "synth/corpus.h"

namespace {

using namespace kf;

const synth::SynthCorpus& CorpusAtScale(double scale) {
  static std::map<double, std::unique_ptr<synth::SynthCorpus>>& cache =
      *new std::map<double, std::unique_ptr<synth::SynthCorpus>>();
  auto it = cache.find(scale);
  if (it == cache.end()) {
    synth::SynthConfig config = synth::SynthConfig().Scaled(scale);
    it = cache
             .emplace(scale, std::make_unique<synth::SynthCorpus>(
                                 synth::GenerateCorpus(config)))
             .first;
  }
  return *it->second;
}

void BM_MapReduceWordHistogram(benchmark::State& state) {
  const size_t n = 1 << 20;
  std::vector<uint32_t> inputs(n);
  Rng rng(7);
  for (auto& x : inputs) x = static_cast<uint32_t>(rng.NextBelow(65536));
  mr::Options opts;
  opts.num_workers = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto out = mr::Job<uint32_t, uint32_t, uint32_t, uint64_t>::Run(
        inputs,
        [](const uint32_t& x,
           const std::function<void(const uint32_t&, uint32_t)>& emit) {
          emit(x % 4096, 1);
        },
        [](const uint32_t&, std::vector<uint32_t>& values,
           const std::function<void(uint64_t)>& emit) {
          uint64_t sum = 0;
          for (uint32_t v : values) sum += v;
          emit(sum);
        },
        opts);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_MapReduceWordHistogram)->Arg(1)->Arg(4)->Arg(16);

void BM_BuildClaims(benchmark::State& state) {
  const auto& corpus = CorpusAtScale(1.0);
  for (auto _ : state) {
    auto set = fusion::BuildClaimSet(
        corpus.dataset, extract::Granularity::ExtractorUrl());
    benchmark::DoNotOptimize(set);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          corpus.dataset.num_records());
}
BENCHMARK(BM_BuildClaims);

void BM_FusePopAccu(benchmark::State& state) {
  double scale = state.range(0) / 4.0;
  const auto& corpus = CorpusAtScale(scale);
  fusion::FusionOptions opts = fusion::FusionOptions::PopAccu();
  opts.num_workers = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    auto result = fusion::Fuse(corpus.dataset, opts);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          corpus.dataset.num_records());
  state.counters["records"] =
      static_cast<double>(corpus.dataset.num_records());
}
BENCHMARK(BM_FusePopAccu)
    ->Args({1, 1})
    ->Args({1, 8})
    ->Args({4, 1})
    ->Args({4, 8})
    ->Args({4, 24})
    ->Args({16, 24})
    ->Unit(benchmark::kMillisecond);

void BM_FuseVote(benchmark::State& state) {
  const auto& corpus = CorpusAtScale(1.0);
  fusion::FusionOptions opts = fusion::FusionOptions::Vote();
  for (auto _ : state) {
    auto result = fusion::Fuse(corpus.dataset, opts);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          corpus.dataset.num_records());
}
BENCHMARK(BM_FuseVote)->Unit(benchmark::kMillisecond);

void BM_GoldStandard(benchmark::State& state) {
  const auto& corpus = CorpusAtScale(1.0);
  for (auto _ : state) {
    auto labels = eval::BuildGoldStandard(corpus.dataset, corpus.freebase);
    benchmark::DoNotOptimize(labels);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          corpus.dataset.num_triples());
}
BENCHMARK(BM_GoldStandard);

}  // namespace

BENCHMARK_MAIN();
