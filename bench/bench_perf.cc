// Performance microbenchmarks (google-benchmark): MapReduce engine
// scaling, claim-graph construction, per-stage sweep costs, incremental
// append, and end-to-end fusion throughput across corpus scales and worker
// counts. The per-stage benchmarks exist to police the claim-graph
// invariant: Stage I/II are sweeps over groupings built once, so one round
// must cost a fraction of an end-to-end BM_FusePopAccu run — if a
// per-round shuffle ever sneaks back in, these regress first.
//
// scripts/bench.sh runs this binary and records BENCH_perf.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <utility>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "eval/gold_standard.h"
#include "fusion/claim_graph.h"
#include "fusion/claims.h"
#include "fusion/engine.h"
#include "mr/mapreduce.h"
#include "spill/spill.h"
#include "synth/corpus.h"

namespace {

using namespace kf;

const synth::SynthCorpus& CorpusAtScale(double scale) {
  static std::map<double, std::unique_ptr<synth::SynthCorpus>>& cache =
      *new std::map<double, std::unique_ptr<synth::SynthCorpus>>();
  auto it = cache.find(scale);
  if (it == cache.end()) {
    synth::SynthConfig config = synth::SynthConfig().Scaled(scale);
    it = cache
             .emplace(scale, std::make_unique<synth::SynthCorpus>(
                                 synth::GenerateCorpus(config)))
             .first;
  }
  return *it->second;
}

fusion::FusionOptions PopAccuOpts(size_t workers) {
  fusion::FusionOptions opts = fusion::FusionOptions::PopAccu();
  opts.num_workers = workers;
  bench::ValidateOrExit(opts);
  return opts;
}

void BM_MapReduceWordHistogram(benchmark::State& state) {
  const size_t n = 1 << 20;
  std::vector<uint32_t> inputs(n);
  Rng rng(7);
  for (auto& x : inputs) x = static_cast<uint32_t>(rng.NextBelow(65536));
  mr::Options opts;
  opts.num_workers = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto out = mr::Job<uint32_t, uint32_t, uint32_t, uint64_t>::Run(
        inputs,
        [](const uint32_t& x,
           const std::function<void(const uint32_t&, uint32_t)>& emit) {
          emit(x % 4096, 1);
        },
        [](const uint32_t&, std::vector<uint32_t>& values,
           const std::function<void(uint64_t)>& emit) {
          uint64_t sum = 0;
          for (uint32_t v : values) sum += v;
          emit(sum);
        },
        opts);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_MapReduceWordHistogram)->Arg(1)->Arg(4)->Arg(16);

// Legacy flat claim construction, kept as the reference point for
// BM_ClaimGraphBuild.
void BM_BuildClaims(benchmark::State& state) {
  const auto& corpus = CorpusAtScale(1.0);
  for (auto _ : state) {
    auto set = fusion::BuildClaimSet(
        corpus.dataset, extract::Granularity::ExtractorUrl());
    benchmark::DoNotOptimize(set);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          corpus.dataset.num_records());
}
BENCHMARK(BM_BuildClaims);

// ---- per-stage benchmarks (the claim-graph hot paths) ----

// Build the sharded graph once (arg: shard count).
void BM_ClaimGraphBuild(benchmark::State& state) {
  const auto& corpus = CorpusAtScale(1.0);
  const size_t shards = static_cast<size_t>(state.range(0));
  size_t actual_shards = 0;  // resolved count (arg 0 = auto)
  for (auto _ : state) {
    fusion::ClaimGraph graph(corpus.dataset,
                             extract::Granularity::ExtractorUrl(), shards);
    actual_shards = graph.num_shards();
    benchmark::DoNotOptimize(graph);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          corpus.dataset.num_records());
  state.counters["shards"] = static_cast<double>(actual_shards);
}
BENCHMARK(BM_ClaimGraphBuild)->Arg(0)->Arg(64)->Arg(256);

// One Stage I sweep: score every item group against the current
// accuracies (args: corpus scale x4, workers).
void BM_StageISweep(benchmark::State& state) {
  double scale = state.range(0) / 4.0;
  const auto& corpus = CorpusAtScale(scale);
  fusion::FusionEngine engine(
      corpus.dataset, PopAccuOpts(static_cast<size_t>(state.range(1))));
  fusion::FusionResult result = engine.Prepare();
  for (auto _ : state) {
    engine.StageI(1, &result);
    benchmark::DoNotOptimize(result.probability.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(engine.num_claims()));
  state.counters["claims"] = static_cast<double>(engine.num_claims());
}
BENCHMARK(BM_StageISweep)
    ->Args({4, 1})
    ->Args({4, 8})
    ->Unit(benchmark::kMillisecond);

// One Stage II sweep: re-evaluate every provenance accuracy from the
// round's probabilities via the cross-index.
void BM_StageIISweep(benchmark::State& state) {
  double scale = state.range(0) / 4.0;
  const auto& corpus = CorpusAtScale(scale);
  fusion::FusionEngine engine(
      corpus.dataset, PopAccuOpts(static_cast<size_t>(state.range(1))));
  fusion::FusionResult result = engine.Prepare();
  engine.StageI(1, &result);
  for (auto _ : state) {
    double delta = engine.StageII(result);
    benchmark::DoNotOptimize(delta);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(engine.num_claims()));
  state.counters["provs"] = static_cast<double>(engine.num_provenances());
}
BENCHMARK(BM_StageIISweep)
    ->Args({4, 1})
    ->Args({4, 8})
    ->Unit(benchmark::kMillisecond);

// ---- isolated scorer cost (the Stage I inner loop) ----

// Every item group of the scale-1 claim graph, materialized once as
// sorted ItemClaims buffers at the default accuracy. Scoring them all is
// exactly Stage I's scorer work with the filtering/scatter stripped away,
// so BM_ScorerOnly isolates the run-length scorer cost from the rest of
// the sweep.
const std::vector<fusion::ItemClaimsBuffer>& ScorerGroupsAtScale1() {
  static const std::vector<fusion::ItemClaimsBuffer>& groups = *[] {
    const auto& corpus = CorpusAtScale(1.0);
    fusion::ClaimGraph graph(corpus.dataset,
                             extract::Granularity::ExtractorUrl(),
                             /*num_shards=*/64);
    auto* out = new std::vector<fusion::ItemClaimsBuffer>();
    for (size_t s = 0; s < graph.num_shards(); ++s) {
      const fusion::ClaimGraph::Shard& sh = graph.shard(s);
      for (size_t g = 0; g < sh.num_items(); ++g) {
        fusion::ItemClaimsBuffer group;
        for (uint32_t i = sh.item_offsets[g]; i < sh.item_offsets[g + 1];
             ++i) {
          group.push(sh.claim_triple[i], 0.8);
        }
        KF_CHECK(group.sorted());  // the shard sorted-group invariant
        out->push_back(std::move(group));
      }
    }
    return out;
  }();
  return groups;
}

void BM_ScorerOnly(benchmark::State& state, const fusion::Scorer& scorer) {
  const auto& groups = ScorerGroupsAtScale1();
  fusion::TripleProbs probs;
  int64_t claims = 0;
  for (const auto& g : groups) claims += static_cast<int64_t>(g.size());
  for (auto _ : state) {
    for (const auto& g : groups) {
      probs.clear();
      scorer.Score(g.view(), &probs);
      benchmark::DoNotOptimize(probs.data());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * claims);
  state.counters["groups"] = static_cast<double>(groups.size());
}
// BENCHMARK_CAPTURE pastes the argument expression into the run lambda,
// so these temporaries are constructed per run and live for the whole
// call — no leak, unlike a pasted `new`.
BENCHMARK_CAPTURE(BM_ScorerOnly, vote, fusion::VoteScorer())
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ScorerOnly, accu,
                  fusion::AccuScorer(/*n_false_values=*/100))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ScorerOnly, popaccu, fusion::PopAccuScorer())
    ->Unit(benchmark::kMillisecond);

// Incremental append: ingest the last `batch` records into an
// already-built graph (rebuilds only the touched shards + cross-index).
void BM_IncrementalAppend(benchmark::State& state) {
  const auto& corpus = CorpusAtScale(1.0);
  const size_t total = corpus.dataset.num_records();
  // Clamp so a batch arg larger than the corpus cannot underflow into a
  // no-op Update that reports an inflated appends/sec baseline.
  const size_t batch =
      std::min(static_cast<size_t>(state.range(0)), total);
  for (auto _ : state) {
    state.PauseTiming();
    fusion::ClaimGraph graph(corpus.dataset,
                             extract::Granularity::ExtractorUrl(),
                             /*num_shards=*/64, /*num_workers=*/0,
                             total - batch);
    state.ResumeTiming();
    graph.Update(corpus.dataset);
    benchmark::DoNotOptimize(graph);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
  state.counters["batch"] = static_cast<double>(batch);
}
BENCHMARK(BM_IncrementalAppend)->Arg(1)->Arg(1024)->Arg(16384);

// ---- streaming warm-start re-fusion (Session::Refuse) ----

// Rounds and ms to reconverge after a 1-record append. _Warm seeds Stage I
// from the previous run's accuracies via Session::Refuse(); _Cold re-runs
// all rounds from scratch on the combined dataset. ACCU at a scale whose
// accuracy iteration actually reaches convergence_epsilon (POPACCU and
// very large corpora limit-cycle under the max-delta criterion and run to
// the round cap, hiding the warm-start win). The "rounds" counter is the
// headline: warm reconvergence takes ~2 rounds vs ~50 cold.
fusion::FusionOptions StreamingAccuOpts() {
  fusion::FusionOptions opts;
  opts.method = fusion::Method::kAccu;
  opts.max_rounds = 100;
  opts.convergence_epsilon = 1e-3;
  opts.num_shards = 64;
  opts.num_workers = 1;
  bench::ValidateOrExit(opts);
  return opts;
}

void BM_RefuseAfterAppend1_Warm(benchmark::State& state) {
  const auto& corpus = CorpusAtScale(0.25);
  const size_t base = corpus.dataset.num_records() - 1;
  double rounds = 0;
  for (auto _ : state) {
    state.PauseTiming();
    kf::Session session(extract::CloneRecordPrefix(corpus.dataset, base));
    auto cold = session.Fuse(StreamingAccuOpts());
    KF_CHECK(cold.ok());
    auto batch =
        extract::ReinternTail(corpus.dataset, base,
                              &session.mutable_dataset());
    state.ResumeTiming();
    KF_CHECK_OK(session.Append(batch));
    auto warm = session.Refuse();
    KF_CHECK(warm.ok());
    rounds = static_cast<double>(warm->num_rounds);
    benchmark::DoNotOptimize(warm);
  }
  state.counters["rounds"] = rounds;
}
BENCHMARK(BM_RefuseAfterAppend1_Warm)->Unit(benchmark::kMillisecond);

void BM_RefuseAfterAppend1_Cold(benchmark::State& state) {
  const auto& corpus = CorpusAtScale(0.25);
  const size_t base = corpus.dataset.num_records() - 1;
  double rounds = 0;
  for (auto _ : state) {
    state.PauseTiming();
    kf::Session session(extract::CloneRecordPrefix(corpus.dataset, base));
    auto batch =
        extract::ReinternTail(corpus.dataset, base,
                              &session.mutable_dataset());
    state.ResumeTiming();
    KF_CHECK_OK(session.Append(batch));
    auto cold = session.Fuse(StreamingAccuOpts());
    KF_CHECK(cold.ok());
    rounds = static_cast<double>(cold->num_rounds);
    benchmark::DoNotOptimize(cold);
  }
  state.counters["rounds"] = rounds;
}
BENCHMARK(BM_RefuseAfterAppend1_Cold)->Unit(benchmark::kMillisecond);

// ---- the fused-KB query path (Session::Snapshot / kf::FusedKB) ----

// Building the session-independent snapshot: copy verdicts + provenance
// table off the engine state and index them (one linear sweep over the
// claim graph, no re-grouping).
void BM_SessionSnapshot(benchmark::State& state) {
  const auto& corpus = CorpusAtScale(1.0);
  kf::Session session = kf::Session::Borrow(corpus.dataset);
  auto fused = session.Fuse(PopAccuOpts(1));
  KF_CHECK(fused.ok());
  size_t triples = 0;
  for (auto _ : state) {
    auto kb = session.Snapshot();
    KF_CHECK(kb.ok());
    triples = kb->num_triples();
    benchmark::DoNotOptimize(kb);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(triples));
  state.counters["triples"] = static_cast<double>(triples);
}
BENCHMARK(BM_SessionSnapshot)->Unit(benchmark::kMillisecond);

const kf::FusedKB& SnapshotAtScale1() {
  static const kf::FusedKB& kb = *[] {
    const auto& corpus = CorpusAtScale(1.0);
    kf::Session session = kf::Session::Borrow(corpus.dataset);
    auto fused = session.Fuse(PopAccuOpts(1));
    KF_CHECK(fused.ok());
    auto snap = session.Snapshot();
    KF_CHECK(snap.ok());
    return new kf::FusedKB(std::move(snap).value());
  }();
  return kb;
}

// Point lookups by (subject, predicate) name: hash to the item, return
// its winner — O(group), never an O(corpus) scan.
void BM_FusedKbLookup(benchmark::State& state) {
  const kf::FusedKB& kb = SnapshotAtScale1();
  // Synthesized names of the id-only synthetic corpus ("s<id>"/"p<id>");
  // cycle through resolved verdicts so every lookup hits a real item.
  std::vector<kf::KbVerdict> keys = kb.TopK(1024);
  KF_CHECK(!keys.empty());
  size_t i = 0;
  size_t found = 0;
  for (auto _ : state) {
    const kf::KbVerdict& key = keys[i];
    if (++i == keys.size()) i = 0;
    auto v = kb.Lookup(key.subject, key.predicate);
    found += v.has_value();
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["found"] = static_cast<double>(found);
}
BENCHMARK(BM_FusedKbLookup);

void BM_FusedKbTopK(benchmark::State& state) {
  const kf::FusedKB& kb = SnapshotAtScale1();
  const size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto top = kb.TopK(k);
    benchmark::DoNotOptimize(top);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(k));
}
BENCHMARK(BM_FusedKbTopK)->Arg(10)->Arg(1000);

// ---- parallel scaling curves ----

// The same work at 1/2/4/8 workers, as one family so
// scripts/bench_compare.py can compute parallel efficiency
// eff(w) = time(1w) / (w * time(w)) and gate regressions on it. Stage I
// (the dominant sweep) and end-to-end POPACCU (includes Stage II, graph
// build, and pool handshakes). items_per_second is the headline metric.
void BM_ScalingCurveStageI(benchmark::State& state) {
  const auto& corpus = CorpusAtScale(1.0);
  fusion::FusionEngine engine(
      corpus.dataset, PopAccuOpts(static_cast<size_t>(state.range(0))));
  fusion::FusionResult result = engine.Prepare();
  for (auto _ : state) {
    engine.StageI(1, &result);
    benchmark::DoNotOptimize(result.probability.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(engine.num_claims()));
}
BENCHMARK(BM_ScalingCurveStageI)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ScalingCurvePopAccu(benchmark::State& state) {
  const auto& corpus = CorpusAtScale(1.0);
  fusion::FusionOptions opts =
      PopAccuOpts(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto result = bench::RunFusion(corpus.dataset, opts);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          corpus.dataset.num_records());
}
BENCHMARK(BM_ScalingCurvePopAccu)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ---- out-of-core fusion (kf::spill) ----

// The budgeted counterparts of BM_ScalingCurveStageI / BM_FusePopAccu:
// the same scale-1 work with the claim graph's spillable columns held to
// a fraction of their total bytes (Arg = percent of the fully-resident
// footprint; 100 still runs the spill machinery but never evicts inside
// the round loop). Counters record what the acceptance bar reads:
// budget_mb, the manager's accounted high-water (hw_mb <= the planned
// max subset), spill traffic (spill_mb, maps), and for the end-to-end
// bench the round loop's sampled peak RSS (peak_rss_mb) — the budget
// plus the engine's non-spillable state, the documented constant.
size_t TotalSpillableBytes(const fusion::ClaimGraph& graph) {
  size_t total = 0;
  for (size_t s = 0; s < graph.num_shards(); ++s) {
    total += graph.shard(s).SpillableBytes();
  }
  return total;
}

void BM_OutOfCoreStageI(benchmark::State& state) {
  const auto& corpus = CorpusAtScale(1.0);
  fusion::FusionOptions opts = PopAccuOpts(8);
  fusion::FusionEngine engine(corpus.dataset, opts);
  fusion::FusionResult result = engine.Prepare();
  const size_t total = TotalSpillableBytes(engine.graph());
  const size_t budget =
      std::max<size_t>(1, total * static_cast<size_t>(state.range(0)) / 100);
  spill::ShardSpillManager::Options mo;
  mo.budget_bytes = budget;
  auto mgr = spill::ShardSpillManager::Create(&engine.mutable_graph(), mo);
  KF_CHECK_OK(mgr.status());
  const spill::SpillPlan plan = spill::PlanSubsets(engine.graph(), budget);
  for (auto _ : state) {
    engine.BeginStageI(1, &result);
    for (const auto& subset : plan.subsets) {
      KF_CHECK_OK((*mgr)->EnsureOnly(subset));
      engine.SweepStageI(subset, &result);
    }
    benchmark::DoNotOptimize(result.probability.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(engine.num_claims()));
  const spill::SpillStats& stats = (*mgr)->stats();
  state.counters["budget_mb"] = static_cast<double>(budget) / (1 << 20);
  state.counters["hw_mb"] =
      static_cast<double>(stats.accounted_high_water) / (1 << 20);
  state.counters["subsets"] = static_cast<double>(plan.subsets.size());
  state.counters["spill_mb"] =
      static_cast<double>(stats.bytes_written) / (1 << 20);
  state.counters["maps"] = static_cast<double>(stats.maps_opened);
}
BENCHMARK(BM_OutOfCoreStageI)
    ->Arg(25)
    ->Arg(50)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_OutOfCorePopAccu(benchmark::State& state) {
  const auto& corpus = CorpusAtScale(1.0);
  fusion::FusionOptions opts = PopAccuOpts(8);
  // Size the budget off a throwaway resident build; the budgeted engine
  // rebuilds the same graph, so the fraction carries over exactly.
  const size_t total = [&] {
    fusion::FusionEngine probe(corpus.dataset, opts);
    probe.Prepare();
    return TotalSpillableBytes(probe.graph());
  }();
  opts.memory_budget_bytes =
      std::max<size_t>(1, total * static_cast<size_t>(state.range(0)) / 100);
  std::unique_ptr<fusion::Fuser> fuser =
      spill::MakeOutOfCoreFuser(fusion::Method::kPopAccu);
  fusion::FuseContext ctx;
  KF_CHECK_OK(fuser->ValidateContext(corpus.dataset, opts, ctx));
  for (auto _ : state) {
    auto result = fuser->Run(corpus.dataset, opts, ctx);
    KF_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          corpus.dataset.num_records());
  const auto* intro = dynamic_cast<spill::OutOfCoreIntrospection*>(fuser.get());
  KF_CHECK(intro != nullptr);
  state.counters["budget_mb"] =
      static_cast<double>(opts.memory_budget_bytes) / (1 << 20);
  state.counters["hw_mb"] =
      static_cast<double>(intro->spill_stats().accounted_high_water) /
      (1 << 20);
  state.counters["peak_rss_mb"] =
      static_cast<double>(intro->round_loop_peak_rss()) / (1 << 20);
  state.counters["spill_mb"] =
      static_cast<double>(intro->spill_stats().bytes_written) / (1 << 20);
}
BENCHMARK(BM_OutOfCorePopAccu)
    ->Arg(25)
    ->Arg(50)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

// ---- end-to-end fusion ----

void BM_FusePopAccu(benchmark::State& state) {
  double scale = state.range(0) / 4.0;
  const auto& corpus = CorpusAtScale(scale);
  fusion::FusionOptions opts =
      PopAccuOpts(static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    auto result = bench::RunFusion(corpus.dataset, opts);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          corpus.dataset.num_records());
  state.counters["records"] =
      static_cast<double>(corpus.dataset.num_records());
}
BENCHMARK(BM_FusePopAccu)
    ->Args({1, 1})
    ->Args({1, 8})
    ->Args({4, 1})
    ->Args({4, 8})
    ->Args({4, 24})
    ->Args({16, 24})
    ->Unit(benchmark::kMillisecond);

void BM_FuseVote(benchmark::State& state) {
  const auto& corpus = CorpusAtScale(1.0);
  fusion::FusionOptions opts = fusion::FusionOptions::Vote();
  bench::ValidateOrExit(opts);
  for (auto _ : state) {
    auto result = bench::RunFusion(corpus.dataset, opts);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          corpus.dataset.num_records());
}
BENCHMARK(BM_FuseVote)->Unit(benchmark::kMillisecond);

void BM_GoldStandard(benchmark::State& state) {
  const auto& corpus = CorpusAtScale(1.0);
  for (auto _ : state) {
    auto labels = eval::BuildGoldStandard(corpus.dataset, corpus.freebase);
    benchmark::DoNotOptimize(labels);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          corpus.dataset.num_triples());
}
BENCHMARK(BM_GoldStandard);

}  // namespace

// BENCHMARK_MAIN plus a context marker for the binary's own build type:
// google-benchmark's stock "library_build_type" describes how the
// *benchmark library* was compiled, which is how a debug baseline once
// slipped into BENCH_perf.json unnoticed. scripts/bench.sh refuses to
// record from a non-release build, and scripts/bench_compare.py warns
// when either side's kf_build_type is "debug".
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("kf_build_type", "release");
#else
  benchmark::AddCustomContext("kf_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
