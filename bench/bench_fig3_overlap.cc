// Figure 3: contribution of each Web content type (TXT/DOM/TBL/ANO) to the
// unique triples, and the (small) overlaps between content types.
#include "bench/bench_util.h"
#include "extract/corpus_stats.h"

using namespace kf;

int main() {
  const auto& w = bench::GetWorkload();
  bench::PrintHeader("Figure 3", "content-type contributions and overlaps");
  auto overlap = extract::ContentTypeOverlap(w.corpus.dataset);

  uint64_t total = 0;
  std::array<uint64_t, 4> per_type = {0, 0, 0, 0};
  for (int mask = 1; mask < 16; ++mask) {
    total += overlap[mask];
    for (int c = 0; c < 4; ++c) {
      if (mask & (1 << c)) per_type[c] += overlap[mask];
    }
  }

  TextTable table({"content type", "unique triples", "share",
                   "paper share"});
  const char* paper_share[] = {"~19% (301M)", "~80% (1280M)", "~0.6% (10M)",
                               "~9% (145M)"};
  for (int c = 0; c < 4; ++c) {
    table.AddRow({extract::ContentTypeName(static_cast<extract::ContentType>(c)),
                  StrFormat("%llu", (unsigned long long)per_type[c]),
                  StrFormat("%.1f%%", 100.0 * per_type[c] / total),
                  paper_share[c]});
  }
  table.Print();

  std::printf("\noverlaps (exact content-type subsets):\n");
  TextTable ov({"subset", "unique triples", "share"});
  for (int mask = 1; mask < 16; ++mask) {
    if (overlap[mask] == 0) continue;
    std::string name;
    for (int c = 0; c < 4; ++c) {
      if (mask & (1 << c)) {
        if (!name.empty()) name += "+";
        name += extract::ContentTypeName(static_cast<extract::ContentType>(c));
      }
    }
    ov.AddRow({name, StrFormat("%llu", (unsigned long long)overlap[mask]),
               StrFormat("%.2f%%", 100.0 * overlap[mask] / total)});
  }
  ov.Print();

  uint64_t multi = 0;
  for (int mask = 1; mask < 16; ++mask) {
    if (__builtin_popcount(mask) > 1) multi += overlap[mask];
  }
  std::printf(
      "\ntriples seen in >1 content type: %.1f%% (paper: small, ~7%%)\n",
      100.0 * multi / total);
  return 0;
}
