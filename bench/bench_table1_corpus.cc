// Table 1: overview of the extracted knowledge — absolute counts plus the
// mean/median/min/max skew rows showing heavy heads and long tails.
#include "bench/bench_util.h"
#include "extract/corpus_stats.h"

using namespace kf;

int main() {
  const auto& w = bench::GetWorkload();
  bench::PrintHeader("Table 1", "overview of extracted knowledge");
  bench::PrintNote(
      "paper corpus: 1.6B triples from 1B+ pages; this corpus is scaled "
      "down ~5 orders of magnitude, so compare shapes (median << mean), "
      "not absolute counts");

  extract::OverviewStats s = extract::ComputeOverview(w.corpus.dataset);
  TextTable counts({"quantity", "measured", "paper"});
  counts.AddRow({"#Extracted (records)",
                 StrFormat("%llu", (unsigned long long)s.num_records),
                 "6.4B"});
  counts.AddRow({"#Unique triples",
                 StrFormat("%llu", (unsigned long long)s.num_unique_triples),
                 "1.6B"});
  counts.AddRow({"#Subjects",
                 StrFormat("%llu", (unsigned long long)s.num_subjects),
                 "43M"});
  counts.AddRow({"#Predicates",
                 StrFormat("%llu", (unsigned long long)s.num_predicates),
                 "4.5K"});
  counts.AddRow({"#Objects",
                 StrFormat("%llu", (unsigned long long)s.num_objects),
                 "102M"});
  counts.AddRow({"#Data items",
                 StrFormat("%llu", (unsigned long long)s.num_items),
                 "337M"});
  counts.Print();

  std::printf("\nskew of count distributions (heavy head, long tail):\n");
  TextTable skew({"distribution", "mean", "median", "min", "max"});
  auto add = [&](const char* name, const extract::SkewStats& st) {
    skew.AddRow({name, ToFixed(st.mean, 1), ToFixed(st.median, 1),
                 StrFormat("%llu", (unsigned long long)st.min),
                 StrFormat("%llu", (unsigned long long)st.max)});
  };
  add("#Triples/entity", s.triples_per_entity);
  add("#Triples/predicate", s.triples_per_predicate);
  add("#Triples/data-item", s.triples_per_item);
  add("#Predicates/entity", s.predicates_per_entity);
  add("#Records/URL", s.records_per_url);
  skew.Print();

  // The paper's qualitative claim: median is much smaller than the mean
  // for every distribution.
  int skewed = 0;
  for (const auto* st :
       {&s.triples_per_entity, &s.triples_per_predicate, &s.triples_per_item,
        &s.records_per_url}) {
    if (st->median < st->mean) ++skewed;
  }
  std::printf("\nskewed distributions (median < mean): %d / 4 (paper: 4/4)\n",
              skewed);
  return 0;
}
