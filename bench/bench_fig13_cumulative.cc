// Figure 13: cumulative refinements on top of POPACCU. Paper metrics:
//   POPACCU           Dev .020 WDev .037 AUC .499
//   +FilterByCov      Dev .016 WDev .038 AUC .511
//   +AccuGranularity  Dev .023 WDev .036 AUC .544
//   +FilterByAccu     Dev .024 WDev .035 AUC .552
//   +GoldStandard     Dev .020 WDev .032 AUC .557
#include "bench/bench_util.h"
#include "eval/report.h"
#include "fusion/engine.h"

using namespace kf;

int main() {
  const auto& w = bench::GetWorkload();
  bench::PrintHeader("Figure 13", "cumulative refinements (POPACCU+)");

  fusion::FusionOptions opts = fusion::FusionOptions::PopAccu();
  struct Step {
    const char* name;
    double paper_dev, paper_wdev, paper_auc;
  };
  Step steps[] = {
      {"POPACCU", .020, .037, .499},
      {"+FilterByCov", .016, .038, .511},
      {"+AccuGranularity", .023, .036, .544},
      {"+FilterByAccu", .024, .035, .552},
      {"+GoldStandard (POPACCU+)", .020, .032, .557},
  };
  TextTable table({"configuration", "Dev (paper)", "WDev (paper)",
                   "AUC-PR (paper)", "coverage"});
  std::vector<eval::ModelReport> reports;
  for (int i = 0; i < 5; ++i) {
    switch (i) {
      case 0:
        break;
      case 1:
        opts.filter_by_coverage = true;
        break;
      case 2:
        opts.granularity =
            extract::Granularity::ExtractorSitePredicatePattern();
        break;
      case 3:
        opts.min_provenance_accuracy = 0.25;  // paper: 0.5 (see Fig 11)
        break;
      case 4:
        opts.init_accuracy_from_gold = true;
        break;
    }
    auto result = bench::RunFusion(w.corpus.dataset, opts, &w.labels);
    auto rep = eval::EvaluateModel(steps[i].name, result, w.labels);
    reports.push_back(rep);
    table.AddRow({steps[i].name,
                  StrFormat("%.3f (%.3f)", rep.deviation, steps[i].paper_dev),
                  StrFormat("%.3f (%.3f)", rep.weighted_deviation,
                            steps[i].paper_wdev),
                  StrFormat("%.3f (%.3f)", rep.auc_pr, steps[i].paper_auc),
                  ToFixed(rep.coverage, 3)});
  }
  table.Print();

  std::printf("\ncalibration curve, POPACCU+ :\n%s",
              eval::RenderCalibration(reports.back().calibration).c_str());
  std::printf(
      "\npaper shape: the stack improves WDev and AUC-PR end to end : %s\n",
      reports.back().weighted_deviation < reports.front().weighted_deviation
              && reports.back().auc_pr > reports.front().auc_pr
          ? "HOLDS"
          : "DIFFERS");
  // Abstract spot checks: p>=0.9 -> ~0.94 real; p<0.1 -> ~0.2 real;
  // [0.4,0.6) -> ~0.6 real.
  auto r = bench::RunFusion(w.corpus.dataset, opts, &w.labels);
  std::printf("\nabstract spot checks (POPACCU+):\n");
  std::printf("  real accuracy at p>=0.9    : %s\n",
              bench::PaperVsMeasured(
                  0.94, eval::RealAccuracyInRange(r.probability,
                                                  r.has_probability,
                                                  w.labels, 0.9, 1.01),
                  2).c_str());
  std::printf("  real accuracy at p<0.1     : %s\n",
              bench::PaperVsMeasured(
                  0.20, eval::RealAccuracyInRange(r.probability,
                                                  r.has_probability,
                                                  w.labels, 0.0, 0.1),
                  2).c_str());
  std::printf("  real accuracy at [0.4,0.6) : %s\n",
              bench::PaperVsMeasured(
                  0.60, eval::RealAccuracyInRange(r.probability,
                                                  r.has_probability,
                                                  w.labels, 0.4, 0.6),
                  2).c_str());
  return 0;
}
