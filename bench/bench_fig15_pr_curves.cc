// Figure 15: PR curves of VOTE, ACCU, POPACCU, POPACCU+(unsup), POPACCU+.
// Paper shape: POPACCU+ dominates; the semi-supervised stack keeps
// precision high deep into the recall range.
#include "bench/bench_util.h"
#include "eval/report.h"
#include "fusion/engine.h"

using namespace kf;

int main() {
  const auto& w = bench::GetWorkload();
  bench::PrintHeader("Figure 15", "PR curves of the fusion models");

  struct Row {
    const char* name;
    fusion::FusionOptions options;
  };
  Row rows[] = {
      {"VOTE", fusion::FusionOptions::Vote()},
      {"ACCU", fusion::FusionOptions::Accu()},
      {"POPACCU", fusion::FusionOptions::PopAccu()},
      {"POPACCU+(unsup)", fusion::FusionOptions::PopAccuPlusUnsup()},
      {"POPACCU+", fusion::FusionOptions::PopAccuPlus()},
  };
  std::vector<eval::ModelReport> reports;
  for (const Row& row : rows) {
    auto result = bench::RunFusion(w.corpus.dataset, row.options, &w.labels);
    reports.push_back(eval::EvaluateModel(row.name, result, w.labels));
  }

  // Precision at fixed recall levels for each model.
  TextTable table({"recall", "VOTE", "ACCU", "POPACCU", "POPACCU+(unsup)",
                   "POPACCU+"});
  for (double recall : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    std::vector<std::string> row = {ToFixed(recall, 1)};
    for (const auto& rep : reports) {
      double best = 0.0;
      for (size_t i = 0; i < rep.pr.recall.size(); ++i) {
        if (rep.pr.recall[i] >= recall - 1e-9) {
          best = rep.pr.precision[i];
          break;
        }
      }
      row.push_back(ToFixed(best, 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf("\nAUC-PR summary:\n");
  for (const auto& rep : reports) {
    std::printf("  %-18s %.3f\n", rep.name.c_str(), rep.auc_pr);
  }
  std::printf("\npaper shape: POPACCU+ has the best PR curve : %s\n",
              reports.back().auc_pr >=
                      std::max({reports[0].auc_pr, reports[1].auc_pr,
                                reports[2].auc_pr, reports[3].auc_pr})
                  ? "HOLDS"
                  : "DIFFERS");
  return 0;
}
