// Figure 5: per-page gap between the best and the worst extractor accuracy
// (pages where >= 2 extractors each contribute >= 5 labeled triples).
// Paper: mean gap 0.32; gap > 0.5 for 21% of pages.
#include "bench/bench_util.h"
#include "extract/corpus_stats.h"

using namespace kf;

int main() {
  const auto& w = bench::GetWorkload();
  bench::PrintHeader("Figure 5",
                     "best-vs-worst extractor accuracy gap per page");
  auto gap = extract::ExtractorGapHistogram(w.corpus.dataset, w.labels,
                                            /*min_triples=*/5);
  const char* buckets[] = {"0", "(0,.1]", "(.1,.2]", "(.2,.3]",
                           "(.3,.4]", "(.4,.5]", ">.5"};
  TextTable table({"accuracy gap", "fraction of pages"});
  for (size_t b = 0; b < gap.fraction.size(); ++b) {
    table.AddRow({buckets[b], ToFixed(gap.fraction[b], 3)});
  }
  table.Print();
  std::printf("\npages measured: %llu\n",
              (unsigned long long)gap.num_pages);
  std::printf("mean gap:        %s\n",
              bench::PaperVsMeasured(0.32, gap.mean_gap, 2).c_str());
  std::printf("gap > 0.5:       %s\n",
              bench::PaperVsMeasured(0.21, gap.frac_above_half, 2).c_str());
  return 0;
}
