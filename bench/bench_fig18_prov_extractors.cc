// Figure 18: triple accuracy by #provenances, split by the number of
// extractors. Paper: at fixed provenance count, triples from >= 8
// extractors are far more accurate (~70% higher on average) than triples
// from a single extractor — the signal buried by the (Extractor, URL)
// cross product.
#include "bench/bench_util.h"
#include "extract/corpus_stats.h"

using namespace kf;

int main() {
  const auto& w = bench::GetWorkload();
  bench::PrintHeader("Figure 18",
                     "accuracy by #provenances and #extractors");
  auto any = extract::AccuracyBySupport(w.corpus.dataset, w.labels,
                                        extract::SupportKind::kProvenances,
                                        /*bin_width=*/50,
                                        /*max_support=*/2500);
  auto one = extract::AccuracyBySupport(w.corpus.dataset, w.labels,
                                        extract::SupportKind::kProvenances,
                                        50, 2500, /*min_extractors=*/1,
                                        /*max_extractors=*/1);
  auto many = extract::AccuracyBySupport(w.corpus.dataset, w.labels,
                                         extract::SupportKind::kProvenances,
                                         50, 2500, /*min_extractors=*/8);

  auto find = [](const std::vector<extract::SupportBin>& bins,
                 uint64_t lo) -> const extract::SupportBin* {
    for (const auto& b : bins) {
      if (b.support_lo == lo) return &b;
    }
    return nullptr;
  };
  TextTable table({"#provenances", "any #extractors", "1 extractor",
                   ">=8 extractors"});
  for (const auto& b : any) {
    auto cell = [&](const std::vector<extract::SupportBin>& bins) {
      const auto* x = find(bins, b.support_lo);
      return x && x->num_labeled >= 5 ? ToFixed(x->accuracy, 3)
                                      : std::string("-");
    };
    table.AddRow({StrFormat("%llu-%llu", (unsigned long long)b.support_lo,
                            (unsigned long long)b.support_hi),
                  ToFixed(b.accuracy, 3), cell(one), cell(many)});
  }
  table.Print();

  // Aggregate gap over matched bins.
  double gain_sum = 0.0;
  int gain_n = 0;
  for (const auto& b : many) {
    const auto* o = find(one, b.support_lo);
    if (o && o->num_labeled >= 5 && b.num_labeled >= 5 &&
        o->accuracy > 0.0) {
      gain_sum += b.accuracy / o->accuracy - 1.0;
      ++gain_n;
    }
  }
  if (gain_n > 0) {
    std::printf(
        "\nmean accuracy gain of >=8-extractor triples over single-extractor"
        "\ntriples at matched #provenances: %s\n",
        bench::PaperVsMeasured(0.70, gain_sum / gain_n, 2).c_str());
  } else {
    std::printf("\n(no matched bins with enough labeled triples)\n");
  }
  return 0;
}
