// Figure 9: calibration of the three basic fusion models (plus the
// only-extractor and only-URL provenance variants). Paper metrics:
//   VOTE    Dev .047  WDev .061  AUC-PR .489
//   ACCU    Dev .033  WDev .042  AUC-PR .524
//   POPACCU Dev .020  WDev .037  AUC-PR .499
//   POPACCU (only ext) WDev .052 AUC .589 ; (only src) WDev .039 AUC .528
#include "bench/bench_util.h"
#include "eval/report.h"
#include "fusion/engine.h"

using namespace kf;

int main() {
  const auto& w = bench::GetWorkload();
  bench::PrintHeader("Figure 9", "calibration of the basic fusion models");

  struct Row {
    const char* name;
    fusion::FusionOptions options;
    double paper_dev, paper_wdev, paper_auc;
  };
  fusion::FusionOptions only_ext = fusion::FusionOptions::PopAccu();
  only_ext.granularity = extract::Granularity::OnlyExtractorPattern();
  fusion::FusionOptions only_src = fusion::FusionOptions::PopAccu();
  only_src.granularity = extract::Granularity::OnlyUrl();
  Row rows[] = {
      {"VOTE", fusion::FusionOptions::Vote(), .047, .061, .489},
      {"ACCU", fusion::FusionOptions::Accu(), .033, .042, .524},
      {"POPACCU", fusion::FusionOptions::PopAccu(), .020, .037, .499},
      {"POPACCU (only ext)", only_ext, .049, .052, .589},
      {"POPACCU (only src)", only_src, .024, .039, .528},
  };

  TextTable table({"model", "Dev (paper)", "WDev (paper)", "AUC-PR (paper)"});
  std::vector<eval::ModelReport> reports;
  for (const Row& row : rows) {
    auto result = bench::RunFusion(w.corpus.dataset, row.options, &w.labels);
    auto rep = eval::EvaluateModel(row.name, result, w.labels);
    reports.push_back(rep);
    table.AddRow({row.name,
                  StrFormat("%.3f (%.3f)", rep.deviation, row.paper_dev),
                  StrFormat("%.3f (%.3f)", rep.weighted_deviation,
                            row.paper_wdev),
                  StrFormat("%.3f (%.3f)", rep.auc_pr, row.paper_auc)});
  }
  table.Print();

  std::printf("\ncalibration curve, POPACCU (predicted vs real):\n%s",
              eval::RenderCalibration(reports[2].calibration).c_str());
  std::printf(
      "\nshape checks (paper): POPACCU WDev < ACCU WDev < VOTE WDev : "
      "%s\n",
      reports[2].weighted_deviation < reports[1].weighted_deviation &&
              reports[1].weighted_deviation < reports[0].weighted_deviation
          ? "HOLDS"
          : "DIFFERS");
  std::printf("ACCU has the best AUC-PR of the three basics : %s\n",
              reports[1].auc_pr >= reports[0].auc_pr &&
                      reports[1].auc_pr >= reports[2].auc_pr
                  ? "HOLDS"
                  : "DIFFERS");
  return 0;
}
